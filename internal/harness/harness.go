// Package harness is the crash-safe experiment supervisor: it wraps the
// experiment registry and the multi-seed sweeps in the run layer a long
// campaign needs to survive its own failures.
//
// A campaign is a grid of cells — one (experiment, seed) pair each — and
// the supervisor guarantees that one bad cell never discards the rest:
//
//   - Isolation. Every cell runs through core.RunExperimentContext, so a
//     panic inside Run is captured (internal/par's panic plumbing, stack
//     included) and filed under a typed taxonomy (Kind / CellError /
//     errors.Is-able sentinels) instead of crashing the campaign.
//   - Retries. Failures classified transient — timeouts, plus whatever
//     Config.Transient opts in — are retried up to Config.Retries times
//     with exponential backoff whose jitter is drawn from xrand.Derive
//     streams keyed by ⟨experiment, seed, attempt⟩: deterministic, and
//     uncorrelated across cells.
//   - Watchdog. Config.Watchdog emits a slow-experiment warning event
//     while Config.Timeout (layered on core's per-run deadline) kills
//     the attempt. A timed-out world is tainted — the abandoned
//     goroutine may still be mutating its caches — and later attempts
//     derive a fresh twin (immutable artifacts shared, mutable state
//     rebuilt).
//   - Checkpoints. With Config.RunDir set, every completed cell is
//     persisted as JSON keyed by the build graph's content key
//     (WorldKey ⊕ experiment ID), written via temp file + atomic rename;
//     Config.Resume skips cells whose checkpoint is already on disk. A
//     config change invalidates exactly the stale cells.
//   - Drain. When the campaign context dies (SIGINT/SIGTERM in
//     cmd/beatbgp), no new cells start; in-flight cells get Config.Grace
//     to finish (and still checkpoint) before being abandoned; and the
//     manifest plus partial results are emitted with an explicit
//     INCOMPLETE banner rather than thrown away.
//
// Determinism holds throughout: a resumed campaign renders byte-identical
// output to an uninterrupted one, at any worker count — the checkpoint
// codec round-trips every float bit-exactly and results are merged in
// cell order, never completion order.
package harness

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"beatbgp/internal/core"
	"beatbgp/internal/par"
	"beatbgp/internal/xrand"
)

// Campaign is the work grid: one experiment per ID, run against the
// world of every seed.
type Campaign struct {
	// Base is the scenario configuration; Seed is overridden per cell by
	// the Seeds sweep (via the same central derivation RunSeeds uses).
	Base core.Config
	// IDs are the experiments to run, in output order. Empty means the
	// full registry.
	IDs []string
	// Seeds are the worlds to sweep. Empty means {Base.Seed}: a plain
	// single-world run. With more than one seed, FinalResults aggregates
	// per-seed table cells exactly like core.RunSeeds.
	Seeds []uint64
	// Experiments optionally overrides the registry the IDs resolve
	// against — the hook tests (and embedders with custom studies) use
	// to drive synthetic experiments through the real supervisor.
	Experiments []core.Experiment
}

// Config tunes the supervisor. The zero value runs the campaign once,
// in-memory, with no retries, checkpoints, or deadlines.
type Config struct {
	// RunDir is the checkpoint directory; "" disables persistence.
	RunDir string
	// Resume skips cells whose checkpoint already exists in RunDir.
	Resume bool
	// Retries caps the extra attempts granted to transient failures.
	Retries int
	// Backoff is the base delay before a retry (default 100ms); attempt
	// n sleeps Backoff·2^(n-1) scaled by a deterministic jitter in
	// [0.5, 1.5) drawn from xrand.Derive(BackoffSeed, experiment, seed,
	// attempt).
	Backoff     time.Duration
	BackoffSeed uint64
	// Timeout is the hard per-attempt deadline (0: none).
	Timeout time.Duration
	// Watchdog emits an EventSlow warning when an attempt outlives it
	// (0: no warnings). It warns; Timeout kills.
	Watchdog time.Duration
	// Grace lets in-flight cells run this much longer after the campaign
	// context is cancelled, so a drain flushes nearly-done work to the
	// checkpoint directory instead of discarding it (0: abandon
	// immediately).
	Grace time.Duration
	// Transient optionally classifies additional errors (beyond
	// timeouts) as retryable.
	Transient func(error) bool
	// Events receives supervisor notifications (slow warnings, retries,
	// checkpoints, world builds). Sends never block: when the channel is
	// full the event is dropped, so a slow consumer cannot stall the
	// campaign.
	Events chan<- Event

	// sleep stubs the backoff delay in tests.
	sleep func(ctx context.Context, d time.Duration)
}

// EventKind tags a supervisor notification.
type EventKind string

const (
	// EventWorld: a seed's world was built (Detail carries the build report).
	EventWorld EventKind = "world"
	// EventSlow: an attempt outlived the watchdog and is still running.
	EventSlow EventKind = "slow"
	// EventRetry: a transient failure is about to be retried after Wall.
	EventRetry EventKind = "retry"
	// EventCheckpoint: a completed cell was persisted.
	EventCheckpoint EventKind = "checkpoint"
	// EventResumed: a cell was restored from RunDir and will not re-run.
	EventResumed EventKind = "resumed"
	// EventBadCheckpoint: a checkpoint existed but could not be used; the
	// cell re-runs.
	EventBadCheckpoint EventKind = "bad-checkpoint"
)

// Event is one supervisor notification.
type Event struct {
	Kind    EventKind
	Cell    CellRef // zero for world builds
	Seed    uint64  // world builds only
	Attempt int
	Wall    time.Duration // elapsed (slow), delay (retry), build time (world)
	Err     string
	Detail  string
}

func (c *Config) emit(ev Event) {
	if c.Events == nil {
		return
	}
	select {
	case c.Events <- ev:
	default:
	}
}

func (c *Config) isTransient(ce *CellError) bool {
	if ce.Kind == KindTimeout {
		return true
	}
	if ce.Kind == KindError && c.Transient != nil {
		return c.Transient(ce.Err)
	}
	return false
}

// backoffDelay is the deterministic retry delay for a cell's attempt:
// exponential in the attempt, jittered by a stream that is a pure
// function of ⟨BackoffSeed, experiment, seed, attempt⟩ so reruns sleep
// identically and sibling cells stay uncorrelated.
func (c *Config) backoffDelay(ref CellRef, attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	const maxDelay = 30 * time.Second
	d := base << (attempt - 1)
	if d <= 0 || d > maxDelay {
		d = maxDelay
	}
	rng := xrand.Derive(c.BackoffSeed, hash64(ref.Experiment), ref.Seed, uint64(attempt))
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

func (c *Config) sleepCtx(ctx context.Context, d time.Duration) {
	if c.sleep != nil {
		c.sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// hash64 is FNV-64a, for keying backoff streams by experiment ID.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}

// cellState is one cell's mutable slot during a run. Each cell is owned
// by exactly one goroutine; everything is read only after the batch's
// WaitGroup settles.
type cellState struct {
	ref   CellRef
	exp   core.Experiment
	out   Outcome
	res   core.Result
	done  bool
	cpErr error // checkpoint write failure: fatal at campaign end
}

// resolve maps the campaign's IDs onto Experiment values.
func (camp Campaign) resolve() ([]core.Experiment, []string, error) {
	reg := camp.Experiments
	if reg == nil {
		reg = core.Experiments()
	}
	byID := make(map[string]core.Experiment, len(reg))
	var order []string
	for _, e := range reg {
		byID[e.ID] = e
		order = append(order, e.ID)
	}
	ids := camp.IDs
	if len(ids) == 0 {
		ids = order
	}
	seen := make(map[string]bool, len(ids))
	exps := make([]core.Experiment, len(ids))
	for i, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, nil, fmt.Errorf("harness: unknown experiment %q", id)
		}
		if seen[id] {
			return nil, nil, fmt.Errorf("harness: duplicate experiment %q", id)
		}
		seen[id] = true
		exps[i] = e
	}
	return exps, ids, nil
}

// Run supervises the campaign to the end of the grid or the end of the
// context, whichever comes first, and always returns a full per-cell
// accounting (the Report and, with RunDir set, the persisted manifest).
// The error is non-nil only for hard failures — invalid campaign or
// supervisor configuration, an unusable run directory — where no cells
// were (or could safely be) run; partial completion is not an error
// here, it is Report.ExitCode() == 2.
func Run(ctx context.Context, camp Campaign, cfg Config) (*Report, error) {
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("harness: negative retries")
	}
	if cfg.Resume && cfg.RunDir == "" {
		return nil, fmt.Errorf("harness: -resume requires a run directory")
	}
	exps, ids, err := camp.resolve()
	if err != nil {
		return nil, err
	}
	seeds := camp.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{camp.Base.Seed}
	}
	seenSeed := make(map[uint64]bool, len(seeds))
	for _, s := range seeds {
		if seenSeed[s] {
			return nil, fmt.Errorf("harness: duplicate seed %d", s)
		}
		seenSeed[s] = true
	}
	if cfg.RunDir != "" {
		if err := os.MkdirAll(cfg.RunDir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		sweepStaleTemps(cfg.RunDir)
	}
	start := time.Now()

	// Lay the grid out seed-major, so each seed's world is built at most
	// once and derived from the previous seed's (RunSeeds' stage-reuse
	// path). Cell keys bind each checkpoint to the exact world content.
	type seedBatch struct {
		seed  uint64
		cells []*cellState
	}
	batches := make([]*seedBatch, 0, len(seeds))
	for _, seed := range seeds {
		scfg := camp.Base
		scfg.Seed = seed
		wk, err := core.WorldKey(scfg)
		if err != nil {
			return nil, fmt.Errorf("harness: seed %d: %w", seed, err)
		}
		b := &seedBatch{seed: seed}
		for i, e := range exps {
			b.cells = append(b.cells, &cellState{
				ref: CellRef{Experiment: ids[i], Seed: seed, Key: cellKey(wk, ids[i])},
				exp: e,
			})
		}
		batches = append(batches, b)
	}

	// Resume: restore completed cells before anything runs. A checkpoint
	// that exists but cannot be used (corrupt, mismatched key) demotes to
	// a re-run, never an abort.
	if cfg.Resume {
		for _, b := range batches {
			for _, c := range b.cells {
				r, ok, err := loadCheckpoint(cfg.RunDir, c.ref)
				if err != nil {
					cfg.emit(Event{Kind: EventBadCheckpoint, Cell: c.ref, Err: err.Error()})
					continue
				}
				if ok {
					c.res, c.done = r, true
					c.out = Outcome{CellRef: c.ref, Status: StatusResumed, Attempts: 0}
					cfg.emit(Event{Kind: EventResumed, Cell: c.ref})
				}
			}
		}
	}

	workers := par.Workers(camp.Base.Workers)
	var prev *core.Scenario
	for _, b := range batches {
		var pending []*cellState
		for _, c := range b.cells {
			if !c.done {
				pending = append(pending, c)
			}
		}
		if len(pending) == 0 {
			continue
		}
		scfg := camp.Base
		scfg.Seed = b.seed
		w := &world{cfg: scfg, prev: prev, emit: cfg.emit}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for _, c := range pending {
			wg.Add(1)
			go func(c *cellState) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runCell(ctx, w, c, &cfg)
			}(c)
		}
		wg.Wait()
		if s := w.snapshot(); s != nil {
			prev = s
		}
	}

	var (
		outcomes []Outcome
		results  = make(map[resKey]core.Result)
		cpErr    error
	)
	for _, b := range batches {
		for _, c := range b.cells {
			outcomes = append(outcomes, c.out)
			if c.done {
				results[resKey{c.ref.Experiment, c.ref.Seed}] = c.res
			}
			if c.cpErr != nil && cpErr == nil {
				cpErr = c.cpErr
			}
		}
	}
	rep := &Report{IDs: ids, Seeds: seeds, Outcomes: outcomes, results: results}
	counts := make(map[Status]int)
	for _, o := range outcomes {
		counts[o.Status]++
	}
	rep.Manifest = Manifest{
		IDs: ids, Seeds: seeds, Workers: workers, Retries: cfg.Retries,
		WallMs: msSince(start), Complete: rep.Complete(), ExitCode: rep.ExitCode(),
		Counts: counts, Outcomes: outcomes,
	}
	if cfg.Timeout > 0 {
		rep.Manifest.Timeout = cfg.Timeout.String()
	}
	if cfg.Watchdog > 0 {
		rep.Manifest.Watchdog = cfg.Watchdog.String()
	}
	if cpErr != nil {
		// The run directory is not recording what we computed; completing
		// "successfully" would leave a resume that silently re-runs (or
		// worse, trusts stale state). Surface it as the hard failure it is.
		return nil, cpErr
	}
	if cfg.RunDir != "" {
		if err := writeManifest(cfg.RunDir, rep.Manifest); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// runCell drives one cell to an Outcome: attempt, classify, maybe retry.
func runCell(ctx context.Context, w *world, c *cellState, cfg *Config) {
	t0 := time.Now()
	fin := func(o Outcome) {
		o.WallMs = msSince(t0)
		c.out = o
	}
	maxAttempts := 1 + cfg.Retries
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			if attempt == 1 {
				fin(Outcome{CellRef: c.ref, Status: StatusSkipped, Kind: KindCancelled, Attempts: 0})
			} else {
				fin(Outcome{CellRef: c.ref, Status: StatusCancelled, Kind: KindCancelled,
					Err: ctx.Err().Error(), Attempts: attempt - 1})
			}
			return
		}
		s, err := w.get(ctx)
		if err != nil {
			ce := cellError(c.ref, err, true)
			if ce.Kind == KindCancelled {
				fin(Outcome{CellRef: c.ref, Status: StatusCancelled, Kind: KindCancelled,
					Err: err.Error(), Attempts: attempt - 1})
			} else {
				fin(Outcome{CellRef: c.ref, Status: StatusFailed, Kind: ce.Kind,
					Err: err.Error(), Attempts: attempt})
			}
			return
		}
		var slow *time.Timer
		if cfg.Watchdog > 0 {
			att, started := attempt, time.Now()
			slow = time.AfterFunc(cfg.Watchdog, func() {
				cfg.emit(Event{Kind: EventSlow, Cell: c.ref, Attempt: att, Wall: time.Since(started)})
			})
		}
		runCtx, stopGrace := ctx, func() {}
		if cfg.Grace > 0 {
			runCtx, stopGrace = graceContext(ctx, cfg.Grace)
		}
		r, err := core.RunExperimentContext(runCtx, s, c.exp, cfg.Timeout)
		stopGrace()
		if slow != nil {
			slow.Stop()
		}
		if err == nil {
			if cfg.RunDir != "" {
				if werr := writeCheckpoint(cfg.RunDir, c.ref, r); werr != nil {
					c.cpErr = werr
				} else {
					cfg.emit(Event{Kind: EventCheckpoint, Cell: c.ref, Attempt: attempt})
				}
			}
			c.res, c.done = r, true
			fin(Outcome{CellRef: c.ref, Status: StatusOK, Attempts: attempt})
			return
		}
		ce := cellError(c.ref, err, false)
		if ce.Kind == KindTimeout || ce.Kind == KindCancelled {
			// The abandoned goroutine may still be mutating this world
			// instance's caches; nothing may run on it again.
			w.taint(s)
		}
		if ce.Kind == KindCancelled {
			fin(Outcome{CellRef: c.ref, Status: StatusCancelled, Kind: KindCancelled,
				Err: err.Error(), Attempts: attempt})
			return
		}
		if attempt < maxAttempts && cfg.isTransient(ce) {
			delay := cfg.backoffDelay(c.ref, attempt)
			cfg.emit(Event{Kind: EventRetry, Cell: c.ref, Attempt: attempt, Err: err.Error(), Wall: delay})
			cfg.sleepCtx(ctx, delay)
			continue
		}
		fin(Outcome{CellRef: c.ref, Status: StatusFailed, Kind: ce.Kind,
			Err: err.Error(), Stack: ce.Stack, Attempts: attempt})
		return
	}
}

// world manages one seed's scenario: lazily built, shared by the seed's
// cells, and replaced by a freshly-derived twin once tainted by a
// timeout (the abandoned goroutine keeps the old instance to itself).
type world struct {
	mu      sync.Mutex
	cfg     core.Config    // campaign base with this batch's seed applied
	prev    *core.Scenario // previous seed's world, for stage reuse
	scen    *core.Scenario
	tainted bool
	emit    func(Event)
}

func (w *world) get(ctx context.Context) (*core.Scenario, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.scen != nil && !w.tainted {
		return w.scen, nil
	}
	t0 := time.Now()
	var s *core.Scenario
	var err error
	switch {
	case w.scen != nil:
		// Tainted: derive a twin with fresh mutable state. Immutable
		// artifacts are shared safely — their memos are guarded and
		// value-deterministic (DESIGN §9 confinement rule).
		s, err = w.scen.DeriveContext(ctx, nil)
	case w.prev != nil:
		seed := w.cfg.Seed
		s, err = w.prev.DeriveContext(ctx, func(c *core.Config) { c.Seed = seed })
	default:
		s, err = core.NewScenarioContext(ctx, w.cfg)
	}
	if err != nil {
		return nil, err
	}
	w.scen, w.tainted = s, false
	w.emit(Event{Kind: EventWorld, Seed: w.cfg.Seed, Wall: time.Since(t0),
		Detail: s.BuildReport().Render()})
	return s, nil
}

func (w *world) taint(s *core.Scenario) {
	w.mu.Lock()
	if w.scen == s {
		w.tainted = true
	}
	w.mu.Unlock()
}

func (w *world) snapshot() *core.Scenario {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.scen
}

// graceContext returns a context that outlives parent's cancellation by
// grace, so a drain lets in-flight work finish (and checkpoint) instead
// of abandoning it mid-computation. The returned stop function releases
// the watcher and cancels the derived context.
func graceContext(parent context.Context, grace time.Duration) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.WithoutCancel(parent))
	stop := context.AfterFunc(parent, func() {
		time.AfterFunc(grace, cancel)
	})
	return ctx, func() {
		stop()
		cancel()
	}
}
