package harness

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beatbgp/internal/core"
	"beatbgp/internal/stats"
)

// sampleResult exercises every awkward corner of the codec: NaN and ±Inf
// (which encoding/json rejects outright), a float with no short decimal
// form, and empty optional sections.
func sampleResult() core.Result {
	return core.Result{
		ID:    "t:sample",
		Title: "sample result",
		Notes: []string{"one note"},
		Series: []stats.Series{{
			Name: "cdf", XLabel: "x", YLabel: "y",
			Points: []stats.XY{
				{X: 0.1, Y: math.NaN()},
				{X: math.Inf(1), Y: -0.30000000000000004},
				{X: 1e-320, Y: math.Inf(-1)}, // subnormal
			},
		}},
		Tables: []stats.Table{{
			Name:    "grid",
			Columns: []string{"c1", "c2"},
			Rows: []stats.Row{
				{Label: "r1", Cells: []float64{1.5, math.NaN()}},
				{Label: "r2", Cells: []float64{math.Inf(-1), 2.718281828459045}},
			},
		}},
	}
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

func TestCheckpointRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	ref := CellRef{Experiment: "t:sample", Seed: 42, Key: "deadbeefdeadbeef"}
	want := sampleResult()
	if err := writeCheckpoint(dir, ref, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := loadCheckpoint(dir, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("checkpoint not found after write")
	}
	if got.Render() != want.Render() {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got.Render(), want.Render())
	}
	// Render collapses precision; the determinism contract needs bit-exact
	// floats, so check them directly.
	for si, s := range want.Series {
		for pi, p := range s.Points {
			g := got.Series[si].Points[pi]
			if !bitsEqual(p.X, g.X) || !bitsEqual(p.Y, g.Y) {
				t.Errorf("series %d point %d: got (%v,%v), want (%v,%v)", si, pi, g.X, g.Y, p.X, p.Y)
			}
		}
	}
	for ti, tb := range want.Tables {
		for ri, row := range tb.Rows {
			for ci, c := range row.Cells {
				g := got.Tables[ti].Rows[ri].Cells[ci]
				if !bitsEqual(c, g) {
					t.Errorf("table %d row %d cell %d: got %v, want %v", ti, ri, ci, g, c)
				}
			}
		}
	}
}

func TestCheckpointMissingIsNotError(t *testing.T) {
	_, ok, err := loadCheckpoint(t.TempDir(), CellRef{Experiment: "x", Seed: 1, Key: "ab"})
	if err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestCheckpointContentMismatchRejected(t *testing.T) {
	// A file whose embedded identity disagrees with its name (say, copied
	// between run dirs) must not be trusted.
	dir := t.TempDir()
	ref := CellRef{Experiment: "t:sample", Seed: 42, Key: "aaaaaaaaaaaaaaaa"}
	if err := writeCheckpoint(dir, ref, sampleResult()); err != nil {
		t.Fatal(err)
	}
	other := CellRef{Experiment: "t:sample", Seed: 42, Key: "bbbbbbbbbbbbbbbb"}
	data, err := os.ReadFile(filepath.Join(dir, checkpointName(ref)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(other)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = loadCheckpoint(dir, other)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched checkpoint accepted: err=%v", err)
	}
}

func TestCheckpointCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	ref := CellRef{Experiment: "t:sample", Seed: 7, Key: "cccccccccccccccc"}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(ref)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := loadCheckpoint(dir, ref)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("torn checkpoint accepted: err=%v", err)
	}
}

func TestSweepStaleTemps(t *testing.T) {
	dir := t.TempDir()
	ref := CellRef{Experiment: "t:sample", Seed: 1, Key: "dddddddddddddddd"}
	if err := writeCheckpoint(dir, ref, sampleResult()); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, tmpPrefix+"leftover-123")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepStaleTemps(dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived the sweep: %v", err)
	}
	if _, ok, err := loadCheckpoint(dir, ref); err != nil || !ok {
		t.Fatalf("real checkpoint lost in sweep: ok=%v err=%v", ok, err)
	}
}
