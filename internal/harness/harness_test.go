package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"beatbgp/internal/core"
	"beatbgp/internal/faults"
	"beatbgp/internal/stats"
)

// testBase is the small world every supervisor test runs against.
func testBase(seed uint64) core.Config {
	cfg := core.Config{Seed: seed, Workers: 2}
	cfg.Topology.EyeballsPerRegion = 6
	cfg.Workload.Days = 2
	return cfg
}

func synth(id string, run func(context.Context, *core.Scenario) (core.Result, error)) core.Experiment {
	return core.Experiment{ID: id, Title: "synthetic " + id, Run: run}
}

// synthResult is deterministic in the scenario (seed-dependent, with a
// float that has no finite binary expansion) so determinism assertions
// have something real to bite on.
func synthResult(s *core.Scenario, id string) core.Result {
	t := stats.Table{Name: "metrics", Columns: []string{"value"}}
	t.AddRow("seed_third", float64(s.Cfg.Seed)/3.0)
	t.AddRow("ases", float64(len(s.Topo.ASes)))
	return core.Result{ID: id, Title: "synthetic " + id, Tables: []stats.Table{t}}
}

func okRun(id string) func(context.Context, *core.Scenario) (core.Result, error) {
	return func(_ context.Context, s *core.Scenario) (core.Result, error) {
		return synthResult(s, id), nil
	}
}

func outcomeFor(t *testing.T, rep *Report, id string) Outcome {
	t.Helper()
	for _, o := range rep.Outcomes {
		if o.Experiment == id {
			return o
		}
	}
	t.Fatalf("no outcome for experiment %q", id)
	return Outcome{}
}

func noSleep(context.Context, time.Duration) {}

func readManifest(t *testing.T, dir string) Manifest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPanicIsolation: one experiment panicking must not abort the
// campaign — its siblings complete, the exit contract says partial (2),
// and the manifest records the panic with its stack.
func TestPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	camp := Campaign{Base: testBase(11), Experiments: []core.Experiment{
		synth("t:ok1", okRun("t:ok1")),
		synth("t:boom", func(context.Context, *core.Scenario) (core.Result, error) {
			panic("kaboom")
		}),
		synth("t:ok2", okRun("t:ok2")),
	}}
	rep, err := Run(context.Background(), camp, Config{RunDir: dir})
	if err != nil {
		t.Fatalf("a cell panic must not be a supervisor error: %v", err)
	}
	if rep.Complete() {
		t.Fatal("campaign with a panicked cell reported complete")
	}
	if rep.ExitCode() != 2 {
		t.Fatalf("exit code = %d, want 2 (partial)", rep.ExitCode())
	}
	for _, id := range []string{"t:ok1", "t:ok2"} {
		if o := outcomeFor(t, rep, id); o.Status != StatusOK {
			t.Errorf("%s: status %q, want ok — siblings must survive a panic", id, o.Status)
		}
	}
	boom := outcomeFor(t, rep, "t:boom")
	if boom.Status != StatusFailed || boom.Kind != KindPanic {
		t.Fatalf("panicked cell filed as (%s, %s), want (failed, panic)", boom.Status, boom.Kind)
	}
	if !strings.Contains(boom.Err, "kaboom") {
		t.Errorf("outcome error %q does not carry the panic value", boom.Err)
	}
	if boom.Stack == "" || !strings.Contains(boom.Stack, "goroutine") {
		t.Errorf("outcome stack %q is not a goroutine stack", boom.Stack)
	}
	if boom.Attempts != 1 {
		t.Errorf("panic consumed %d attempts, want 1 (panics are not transient)", boom.Attempts)
	}
	if !errors.Is(rep.FirstError(), ErrPanic) {
		t.Errorf("FirstError %v does not match ErrPanic", rep.FirstError())
	}
	m := readManifest(t, dir)
	if m.ExitCode != 2 || m.Complete {
		t.Errorf("manifest says exit=%d complete=%v, want 2/false", m.ExitCode, m.Complete)
	}
	var mb *Outcome
	for i := range m.Outcomes {
		if m.Outcomes[i].Experiment == "t:boom" {
			mb = &m.Outcomes[i]
		}
	}
	if mb == nil || mb.Kind != KindPanic || mb.Stack == "" {
		t.Errorf("manifest does not record the panic with its stack: %+v", mb)
	}
	if m.Counts[StatusOK] != 2 || m.Counts[StatusFailed] != 1 {
		t.Errorf("manifest counts = %v, want 2 ok / 1 failed", m.Counts)
	}
}

// TestRetryTransient: an error the Transient hook classifies retryable is
// retried (with the deterministic backoff consulted) and the attempt
// count lands in the outcome.
func TestRetryTransient(t *testing.T) {
	var attempts atomic.Int32
	camp := Campaign{Base: testBase(5), Experiments: []core.Experiment{
		synth("t:flaky", func(_ context.Context, s *core.Scenario) (core.Result, error) {
			if attempts.Add(1) == 1 {
				return core.Result{}, errors.New("flaky glitch")
			}
			return synthResult(s, "t:flaky"), nil
		}),
	}}
	events := make(chan Event, 64)
	cfg := Config{
		Retries:   2,
		Backoff:   time.Millisecond,
		Transient: func(err error) bool { return strings.Contains(err.Error(), "flaky") },
		Events:    events,
		sleep:     noSleep,
	}
	rep, err := Run(context.Background(), camp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeFor(t, rep, "t:flaky")
	if o.Status != StatusOK || o.Attempts != 2 {
		t.Fatalf("outcome (%s, %d attempts), want (ok, 2)", o.Status, o.Attempts)
	}
	if n := attempts.Load(); n != 2 {
		t.Fatalf("experiment ran %d times, want 2", n)
	}
	sawRetry := false
	for {
		select {
		case ev := <-events:
			if ev.Kind == EventRetry && ev.Attempt == 1 && ev.Wall > 0 {
				sawRetry = true
			}
			continue
		default:
		}
		break
	}
	if !sawRetry {
		t.Error("no EventRetry for attempt 1 was emitted")
	}
}

// TestNonTransientNotRetried: without a Transient opt-in, an ordinary
// error burns exactly one attempt no matter the retry budget.
func TestNonTransientNotRetried(t *testing.T) {
	var attempts atomic.Int32
	camp := Campaign{Base: testBase(5), Experiments: []core.Experiment{
		synth("t:hard", func(context.Context, *core.Scenario) (core.Result, error) {
			attempts.Add(1)
			return core.Result{}, errors.New("deterministic defect")
		}),
	}}
	rep, err := Run(context.Background(), camp, Config{Retries: 3, sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeFor(t, rep, "t:hard")
	if o.Status != StatusFailed || o.Kind != KindError || o.Attempts != 1 {
		t.Fatalf("outcome (%s, %s, %d attempts), want (failed, error, 1)", o.Status, o.Kind, o.Attempts)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("experiment ran %d times, want 1", n)
	}
}

// TestFaultWindowTimeoutRetried: the fault-injection layer and the
// supervisor compose — an experiment stalled inside a scheduled fault
// window hits the per-attempt deadline (transient by taxonomy), is
// retried once, probes past the window, and succeeds.
func TestFaultWindowTimeoutRetried(t *testing.T) {
	var attempt atomic.Int32
	camp := Campaign{Base: testBase(3), Experiments: []core.Experiment{
		synth("t:window", func(ctx context.Context, s *core.Scenario) (core.Result, error) {
			tl, err := faults.New(s.Topo, []faults.Event{
				{Kind: faults.LDNSStale, Target: -1, Start: 0, Duration: 60},
			})
			if err != nil {
				return core.Result{}, err
			}
			// Attempt n probes minute 90·(n-1): the first lands inside the
			// stale window and stalls; the second lands past it.
			clock := float64(attempt.Add(1)-1) * 90
			if tl.DNSStale(clock) {
				<-ctx.Done()
				return core.Result{}, ctx.Err()
			}
			return synthResult(s, "t:window"), nil
		}),
	}}
	cfg := Config{Retries: 1, Timeout: 50 * time.Millisecond, Backoff: time.Millisecond, sleep: noSleep}
	rep, err := Run(context.Background(), camp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeFor(t, rep, "t:window")
	if o.Status != StatusOK || o.Attempts != 2 {
		t.Fatalf("outcome (%s, %d attempts), want (ok, 2): %s", o.Status, o.Attempts, o.Err)
	}
}

// TestDeterministicBackoff: the jitter is a pure function of
// (seed, experiment, seed, attempt) — identical across processes, and
// uncorrelated across cells.
func TestDeterministicBackoff(t *testing.T) {
	cfg := Config{Backoff: 100 * time.Millisecond, BackoffSeed: 9}
	a := CellRef{Experiment: "fig1", Seed: 42}
	if d1, d2 := cfg.backoffDelay(a, 1), cfg.backoffDelay(a, 1); d1 != d2 {
		t.Fatalf("same cell, same attempt: %v != %v", d1, d2)
	}
	b := CellRef{Experiment: "fig2", Seed: 42}
	if cfg.backoffDelay(a, 1) == cfg.backoffDelay(b, 1) {
		t.Error("sibling cells drew identical jitter (correlated backoff)")
	}
	d1, d2 := cfg.backoffDelay(a, 1), cfg.backoffDelay(a, 2)
	if d2 < d1 { // exponential base dominates the [0.5,1.5) jitter at 2×
		t.Errorf("attempt 2 delay %v below attempt 1 delay %v", d2, d1)
	}
}

// TestCancellationLeavesNoPartialCheckpoint: a drain mid-campaign leaves
// the run directory with only complete, loadable checkpoints and the
// manifest — never a torn file or a stray temp.
func TestCancellationLeavesNoPartialCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan Event, 128)
	go func() {
		for ev := range events {
			if ev.Kind == EventCheckpoint {
				cancel() // the drain arrives right after the first cell lands
				return
			}
		}
	}()
	camp := Campaign{Base: testBase(9), Experiments: []core.Experiment{
		synth("t:fast", okRun("t:fast")),
		synth("t:hang", func(ctx context.Context, s *core.Scenario) (core.Result, error) {
			<-ctx.Done()
			return core.Result{}, ctx.Err()
		}),
	}}
	rep, err := Run(ctx, camp, Config{RunDir: dir, Events: events})
	if err != nil {
		t.Fatalf("a drain must not be a supervisor error: %v", err)
	}
	if rep.Complete() || rep.ExitCode() != 2 {
		t.Fatalf("drained campaign: complete=%v exit=%d, want false/2", rep.Complete(), rep.ExitCode())
	}
	if o := outcomeFor(t, rep, "t:hang"); o.Status != StatusCancelled && o.Status != StatusSkipped {
		t.Errorf("hung cell status %q, want cancelled or skipped", o.Status)
	}
	if b := rep.Banner(); !strings.Contains(b, "INCOMPLETE RUN") || !strings.Contains(b, "-resume") {
		t.Errorf("banner missing the partial marker or the resume hint:\n%s", b)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("stray temp file %q after drain", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Errorf("torn file %q in run dir after drain", e.Name())
		}
	}
	// Every checkpoint present corresponds to a completed cell and loads.
	for _, o := range rep.Outcomes {
		_, ok, err := loadCheckpoint(dir, o.CellRef)
		if err != nil {
			t.Errorf("cell %s: unreadable checkpoint: %v", o.CellRef, err)
		}
		if ok && o.Status != StatusOK {
			t.Errorf("cell %s has status %q but a checkpoint on disk", o.CellRef, o.Status)
		}
		if !ok && o.Status == StatusOK {
			t.Errorf("completed cell %s has no checkpoint", o.CellRef)
		}
	}
	if m := readManifest(t, dir); m.Complete || m.ExitCode != 2 {
		t.Errorf("manifest after drain: complete=%v exit=%d, want false/2", m.Complete, m.ExitCode)
	}
}

// TestBadCheckpointReruns: a corrupt checkpoint demotes the cell to a
// re-run (with an event), never an abort — and the re-run repairs it.
func TestBadCheckpointReruns(t *testing.T) {
	dir := t.TempDir()
	camp := Campaign{Base: testBase(4), Experiments: []core.Experiment{
		synth("t:x", okRun("t:x")),
	}}
	rep, err := Run(context.Background(), camp, Config{RunDir: dir})
	if err != nil || !rep.Complete() {
		t.Fatalf("seed run: complete=%v err=%v", rep.Complete(), err)
	}
	ref := rep.Outcomes[0].CellRef
	if err := os.WriteFile(filepath.Join(dir, checkpointName(ref)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	events := make(chan Event, 64)
	rep2, err := Run(context.Background(), camp, Config{RunDir: dir, Resume: true, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	o := outcomeFor(t, rep2, "t:x")
	if o.Status != StatusOK || o.Attempts != 1 {
		t.Fatalf("cell with corrupt checkpoint: (%s, %d attempts), want a clean re-run", o.Status, o.Attempts)
	}
	sawBad := false
	for {
		select {
		case ev := <-events:
			sawBad = sawBad || ev.Kind == EventBadCheckpoint
			continue
		default:
		}
		break
	}
	if !sawBad {
		t.Error("no EventBadCheckpoint emitted for the corrupt file")
	}
	if _, ok, err := loadCheckpoint(dir, ref); err != nil || !ok {
		t.Fatalf("re-run did not repair the checkpoint: ok=%v err=%v", ok, err)
	}
}

func TestRunValidation(t *testing.T) {
	base := testBase(1)
	cases := []struct {
		name string
		camp Campaign
		cfg  Config
	}{
		{"negative retries", Campaign{Base: base, IDs: []string{"fig1"}}, Config{Retries: -1}},
		{"resume without dir", Campaign{Base: base, IDs: []string{"fig1"}}, Config{Resume: true}},
		{"unknown experiment", Campaign{Base: base, IDs: []string{"no-such"}}, Config{}},
		{"duplicate experiment", Campaign{Base: base, IDs: []string{"fig1", "fig1"}}, Config{}},
		{"duplicate seed", Campaign{Base: base, IDs: []string{"fig1"}, Seeds: []uint64{3, 3}}, Config{}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.camp, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
