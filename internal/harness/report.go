package harness

import (
	"errors"
	"fmt"
	"strings"

	"beatbgp/internal/core"
)

// Report is a supervised campaign's in-memory outcome: per-cell records,
// the manifest that was (or would be) persisted, and the completed
// results keyed by (experiment, seed).
type Report struct {
	IDs      []string
	Seeds    []uint64
	Outcomes []Outcome
	Manifest Manifest

	results map[resKey]core.Result
}

type resKey struct {
	id   string
	seed uint64
}

// Complete reports whether every cell finished (ran in this run or was
// resumed from a checkpoint).
func (r *Report) Complete() bool {
	for _, o := range r.Outcomes {
		if o.Status != StatusOK && o.Status != StatusResumed {
			return false
		}
	}
	return true
}

// ExitCode maps the report onto the process exit contract: 0 for a
// complete campaign, 2 for a partial one. (1 is reserved for hard
// errors, where no report exists at all.)
func (r *Report) ExitCode() int {
	if r.Complete() {
		return 0
	}
	return 2
}

// Result returns the completed result for one cell.
func (r *Report) Result(id string, seed uint64) (core.Result, bool) {
	res, ok := r.results[resKey{id, seed}]
	return res, ok
}

// FinalResults assembles the renderable results in experiment order: the
// per-cell result when the campaign ran a single seed, or the RunSeeds
// mean/min/max aggregate when it swept several. Experiments with any
// incomplete cell are omitted — they are what Banner reports. Because
// aggregation folds the per-seed results in seed order, a resumed
// campaign's FinalResults render byte-identically to an uninterrupted
// one's.
func (r *Report) FinalResults() ([]core.Result, error) {
	var out []core.Result
	for _, id := range r.IDs {
		perSeed := make([]core.Result, 0, len(r.Seeds))
		for _, seed := range r.Seeds {
			res, ok := r.results[resKey{id, seed}]
			if !ok {
				break
			}
			perSeed = append(perSeed, res)
		}
		if len(perSeed) != len(r.Seeds) {
			continue // incomplete experiment
		}
		if len(r.Seeds) == 1 {
			out = append(out, perSeed[0])
			continue
		}
		agg, err := core.AggregateSeeds(id, r.Seeds, perSeed)
		if err != nil {
			return nil, err
		}
		out = append(out, agg)
	}
	return out, nil
}

// FirstError reconstructs the typed error of the first failed cell (in
// campaign order), or nil when no cell failed outright. The result is a
// *CellError, so errors.Is against the kind sentinels (ErrPanic,
// ErrTimeout, ...) works on it.
func (r *Report) FirstError() error {
	for _, o := range r.Outcomes {
		if o.Status == StatusFailed {
			return &CellError{Cell: o.CellRef, Kind: o.Kind, Stack: o.Stack, Err: errors.New(o.Err)}
		}
	}
	return nil
}

// IncompleteCells returns the outcomes of every cell that did not finish,
// in campaign (seed-major, experiment-minor) order.
func (r *Report) IncompleteCells() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Status != StatusOK && o.Status != StatusResumed {
			out = append(out, o)
		}
	}
	return out
}

// Banner renders the explicit partial-result marker for an incomplete
// campaign: which cells are missing and why, and how to finish the run.
// It returns "" for a complete campaign.
func (r *Report) Banner() string {
	bad := r.IncompleteCells()
	if len(bad) == 0 {
		return ""
	}
	var b strings.Builder
	done := len(r.Outcomes) - len(bad)
	fmt.Fprintf(&b, "== INCOMPLETE RUN: %d/%d cells completed ==\n", done, len(r.Outcomes))
	for _, o := range bad {
		switch o.Status {
		case StatusSkipped:
			fmt.Fprintf(&b, "  %-24s skipped (never started)\n", o.CellRef)
		case StatusCancelled:
			fmt.Fprintf(&b, "  %-24s cancelled after %d attempt(s)\n", o.CellRef, o.Attempts)
		default:
			fmt.Fprintf(&b, "  %-24s failed [%s] after %d attempt(s): %s\n",
				o.CellRef, o.Kind, o.Attempts, firstLine(o.Err))
		}
	}
	b.WriteString("re-run with -resume <run-dir> to finish the remaining cells\n")
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
