package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"beatbgp/internal/core"
)

func renderFinal(t *testing.T, rep *Report) string {
	t.Helper()
	rs, err := rep.FinalResults()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Render())
	}
	return b.String()
}

// TestKillAndResumeByteIdentical is the supervisor's determinism
// contract: a campaign interrupted mid-flight and resumed renders
// byte-identically to one that ran uninterrupted, at any worker count —
// and the resume re-runs nothing that was already checkpointed (zero
// attempts on every resumed cell, per the manifest).
func TestKillAndResumeByteIdentical(t *testing.T) {
	seeds := []uint64{42, 7}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := testBase(seeds[0])
			base.Workers = workers

			// Two synthetic experiments over a two-seed sweep: four cells.
			// gate (when non-nil) blocks the second seed's cells until the
			// context dies, so the interruption always lands mid-campaign.
			mkExps := func(gate <-chan struct{}) []core.Experiment {
				run := func(id string) func(context.Context, *core.Scenario) (core.Result, error) {
					return func(ctx context.Context, s *core.Scenario) (core.Result, error) {
						if gate != nil && s.Cfg.Seed == seeds[1] {
							select {
							case <-gate:
							case <-ctx.Done():
								return core.Result{}, ctx.Err()
							}
						}
						return synthResult(s, id), nil
					}
				}
				return []core.Experiment{
					synth("t:alpha", run("t:alpha")),
					synth("t:beta", run("t:beta")),
				}
			}

			// Baseline: uninterrupted, no persistence.
			baseRep, err := Run(context.Background(),
				Campaign{Base: base, Seeds: seeds, Experiments: mkExps(nil)}, Config{})
			if err != nil || !baseRep.Complete() {
				t.Fatalf("baseline: complete=%v err=%v", baseRep.Complete(), err)
			}
			want := renderFinal(t, baseRep)
			if want == "" {
				t.Fatal("baseline rendered empty")
			}

			// Interrupted run: cancel the campaign as soon as the first
			// checkpoint lands; seed-7 cells are gated shut.
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			events := make(chan Event, 256)
			go func() {
				for ev := range events {
					if ev.Kind == EventCheckpoint {
						cancel()
						return
					}
				}
			}()
			rep1, err := Run(ctx,
				Campaign{Base: base, Seeds: seeds, Experiments: mkExps(make(chan struct{}))},
				Config{RunDir: dir, Events: events})
			if err != nil {
				t.Fatalf("interrupted run: %v", err)
			}
			if rep1.Complete() {
				t.Fatal("interrupted run completed; the gate failed to hold the drain open")
			}
			completed := 0
			for _, o := range rep1.Outcomes {
				if o.Status == StatusOK {
					completed++
				}
			}
			if completed == 0 {
				t.Fatal("no cell completed before the drain")
			}

			// Resume with the gates open: the checkpointed cells must be
			// restored without re-running, the rest run fresh.
			open := make(chan struct{})
			close(open)
			rep2, err := Run(context.Background(),
				Campaign{Base: base, Seeds: seeds, Experiments: mkExps(open)},
				Config{RunDir: dir, Resume: true})
			if err != nil {
				t.Fatalf("resume run: %v", err)
			}
			if !rep2.Complete() || rep2.ExitCode() != 0 {
				t.Fatalf("resume run: complete=%v exit=%d", rep2.Complete(), rep2.ExitCode())
			}
			resumed := 0
			for _, o := range rep2.Outcomes {
				switch o.Status {
				case StatusResumed:
					resumed++
					if o.Attempts != 0 {
						t.Errorf("resumed cell %s consumed %d attempts, want 0 (no re-run)",
							o.CellRef, o.Attempts)
					}
				case StatusOK:
				default:
					t.Errorf("cell %s finished resume run with status %q", o.CellRef, o.Status)
				}
			}
			if resumed != completed {
				t.Errorf("resume restored %d cells, %d were checkpointed", resumed, completed)
			}

			// The persisted manifest must agree: zero attempts across every
			// resumed cell, full completion, exit 0.
			m := readManifest(t, dir)
			if !m.Complete || m.ExitCode != 0 {
				t.Errorf("manifest: complete=%v exit=%d, want true/0", m.Complete, m.ExitCode)
			}
			if m.Counts[StatusResumed] != completed {
				t.Errorf("manifest counts %d resumed cells, want %d", m.Counts[StatusResumed], completed)
			}
			for _, o := range m.Outcomes {
				if o.Status == StatusResumed && o.Attempts != 0 {
					t.Errorf("manifest records %d attempts for resumed cell %s, want 0", o.Attempts, o.CellRef)
				}
			}

			// The headline contract: byte-identical final render.
			if got := renderFinal(t, rep2); got != want {
				t.Errorf("resumed render differs from uninterrupted baseline:\n got: %q\nwant: %q", got, want)
			}
		})
	}
}
