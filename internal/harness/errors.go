package harness

import (
	"context"
	"errors"
	"fmt"

	"beatbgp/internal/par"
)

// Kind is the supervisor's error taxonomy: every failed cell is filed
// under exactly one kind, which drives the retry policy (only transient
// kinds are retried) and the manifest's machine-readable outcome records.
type Kind string

const (
	// KindNone marks a successful cell.
	KindNone Kind = ""
	// KindPanic is a panic inside Experiment.Run, captured with its stack.
	KindPanic Kind = "panic"
	// KindTimeout is a per-attempt deadline (Config.Timeout) that fired.
	// Timeouts are the one transient kind: a hung probe or a fault-window
	// stall can clear on a retry against a fresh world.
	KindTimeout Kind = "timeout"
	// KindCancelled is a campaign-context cancellation — a drain. Never
	// retried: the operator asked us to stop.
	KindCancelled Kind = "cancelled"
	// KindBuildFailed is a scenario (world) build failure. Deterministic
	// in the config, so never retried.
	KindBuildFailed Kind = "build-failed"
	// KindError is any other experiment error. Not retried by default;
	// Config.Transient can opt specific errors in.
	KindError Kind = "error"
)

// Sentinel errors, one per failure kind. A *CellError matches the
// sentinel of its kind under errors.Is, so callers can branch on the
// taxonomy without string inspection:
//
//	if errors.Is(err, harness.ErrTimeout) { ... }
var (
	ErrPanic       = errors.New("harness: experiment panicked")
	ErrTimeout     = errors.New("harness: experiment timed out")
	ErrCancelled   = errors.New("harness: experiment cancelled")
	ErrBuildFailed = errors.New("harness: scenario build failed")

	// ErrPartial marks a campaign that finished with incomplete cells
	// (failures, cancellations, or cells never started before a drain).
	// It is the exit-code-2 signal: callers wrap it so deferred cleanup
	// still runs where a mid-flight os.Exit would have skipped it.
	ErrPartial = errors.New("harness: campaign incomplete")
)

func sentinel(k Kind) error {
	switch k {
	case KindPanic:
		return ErrPanic
	case KindTimeout:
		return ErrTimeout
	case KindCancelled:
		return ErrCancelled
	case KindBuildFailed:
		return ErrBuildFailed
	}
	return nil
}

// CellError is one cell's classified failure: which (experiment, seed)
// failed, how the failure is filed, and — for panics — the captured
// goroutine stack. It wraps the underlying error and additionally
// matches its kind's sentinel under errors.Is.
type CellError struct {
	Cell  CellRef
	Kind  Kind
	Stack string // panic stack, empty otherwise
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("harness: experiment %s seed %d [%s]: %v",
		e.Cell.Experiment, e.Cell.Seed, e.Kind, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Is matches the sentinel of the cell's kind (and nothing else; the
// wrapped chain is reachable through Unwrap).
func (e *CellError) Is(target error) bool {
	s := sentinel(e.Kind)
	return s != nil && target == s
}

// Classify files an error from an experiment run under the taxonomy:
// captured panics (par.PanicError, which core.RunExperimentContext
// produces) are KindPanic, deadline errors KindTimeout, cancellations
// KindCancelled, everything else KindError. Build failures cannot be
// recognized from the error alone; the supervisor files them at the
// build site.
func Classify(err error) Kind {
	var pe *par.PanicError
	switch {
	case err == nil:
		return KindNone
	case errors.As(err, &pe):
		return KindPanic
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, context.Canceled):
		return KindCancelled
	}
	return KindError
}

// cellError classifies err for cell, extracting the panic stack when
// there is one. buildSite reroutes unclassified errors to
// KindBuildFailed (scenario construction instead of experiment code).
func cellError(cell CellRef, err error, buildSite bool) *CellError {
	kind := Classify(err)
	if kind == KindError && buildSite {
		kind = KindBuildFailed
	}
	var stack string
	var pe *par.PanicError
	if errors.As(err, &pe) {
		stack = string(pe.Stack)
	}
	return &CellError{Cell: cell, Kind: kind, Stack: stack, Err: err}
}
