package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical draws", same)
	}
}

func TestSplitDecouples(t *testing.T) {
	a := New(7).Split("alpha")
	b := New(7).Split("beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams with different labels should differ")
	}
	c, d := New(7).Split("alpha"), New(7).Split("alpha")
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same-label splits of identically seeded parents must agree")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnDegenerate(t *testing.T) {
	r := New(1)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-3); got != 0 {
		t.Fatalf("Intn(-3) = %d, want 0", got)
	}
	// Degenerate calls must not consume a draw: the stream is unperturbed.
	a, b := New(7), New(7)
	a.Intn(0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Intn(0) consumed a draw")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("norm mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Fatalf("norm stddev = %v, want ~3", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("exp mean = %v, want ~4", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(19)
	for i := 0; i < 100000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
	// Rank 0 should hold a substantial share under s=1.1 over 100 ranks.
	if frac := float64(counts[0]) / n; frac < 0.10 {
		t.Fatalf("rank-0 share %v too small for Zipf(1.1)", frac)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(New(1), 50, 0.9)
	sum := 0.0
	for i := 0; i < 50; i++ {
		w := z.Weight(i)
		if w <= 0 {
			t.Fatalf("weight %d non-positive", i)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := New(37)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	r := New(1)
	if got := r.WeightedChoice([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-sum WeightedChoice = %d, want 0", got)
	}
	if got := r.WeightedChoice(nil); got != 0 {
		t.Fatalf("empty WeightedChoice = %d, want 0", got)
	}
	// Negative weights count as zero, never get chosen.
	for i := 0; i < 100; i++ {
		if got := r.WeightedChoice([]float64{-5, 1, -2}); got != 1 {
			t.Fatalf("WeightedChoice picked index %d with non-positive weight", got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(0, 1)
	}
}

func TestDerivePureAndOrderIndependent(t *testing.T) {
	// Derive is a pure function of (seed, keys): repeated calls agree and
	// consume no shared state.
	a := Derive(42, 7, 9).Uint64()
	b := Derive(42, 7, 9).Uint64()
	if a != b {
		t.Fatal("Derive is not a pure function of its arguments")
	}
	// Key order matters: (a, b) and (b, a) are distinct streams.
	if Derive(42, 7, 9).Uint64() == Derive(42, 9, 7).Uint64() {
		t.Fatal("Derive ignores key order")
	}
	// Nearby keys yield unrelated streams.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		v := Derive(1, i).Uint64()
		if seen[v] {
			t.Fatalf("key %d collides with an earlier key", i)
		}
		seen[v] = true
	}
	// No keys degrades to New(seed).
	if Derive(5).Uint64() != New(5).Uint64() {
		t.Fatal("keyless Derive should match New")
	}
}

func TestDeriveConcurrentSafe(t *testing.T) {
	// Derive from a shared seed across goroutines: no shared mutation, so
	// -race stays quiet and every goroutine sees its keyed stream.
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			want := Derive(99, uint64(g)).Uint64()
			ok := true
			for i := 0; i < 100; i++ {
				if Derive(99, uint64(g)).Uint64() != want {
					ok = false
				}
			}
			done <- ok
		}(g)
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("keyed stream unstable under concurrency")
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	// Both regimes — Knuth product (mean < 30) and the normal
	// approximation (mean >= 30) — must land near the Poisson mean and
	// variance.
	for _, mean := range []float64{0.5, 4, 25, 60, 400} {
		r := New(77)
		const n = 40000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(mean))
			sum += k
			sumSq += k * k
		}
		m := sum / n
		v := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("mean %v: sample mean %v", mean, m)
		}
		// Poisson variance equals the mean.
		if math.Abs(v-mean) > 0.12*mean+0.12 {
			t.Errorf("mean %v: sample variance %v, want ~%v", mean, v, mean)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	r := New(1)
	for _, mean := range []float64{0, -3, math.NaN()} {
		if k := r.Poisson(mean); k != 0 {
			t.Fatalf("Poisson(%v) = %d, want 0", mean, k)
		}
	}
	for i := 0; i < 1000; i++ {
		if k := r.Poisson(1e6); k < 0 {
			t.Fatal("Poisson draw went negative")
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := Derive(5, 0xbeef), Derive(5, 0xbeef)
	for i := 0; i < 200; i++ {
		if ka, kb := a.Poisson(9.5), b.Poisson(9.5); ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
	}
}
