// Package xrand provides a small, deterministic pseudo-random number
// generator and the distributions used throughout the simulator.
//
// Every stochastic component in the repository draws from an *xrand.Rand
// seeded from an explicit configuration value, so that a scenario is
// bit-reproducible across runs and platforms. The generator is a
// splitmix64-seeded xoshiro256** — fast, well distributed, and independent
// of the Go runtime's math/rand sequence guarantees.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. The zero value is
// not ready for use; construct with New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed expander; it is used only to initialize the
// xoshiro state so that nearby seeds yield unrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the one fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a generator that is a pure function of (seed, keys):
// unlike Split it consumes no draw and touches no shared state, so it is
// safe to call concurrently and yields the same stream regardless of call
// order. This is the RNG-splitting rule for sharded parallel work
// (internal/par): key every stream by the item or shard index — never by
// the worker or by scheduling — and random draws stay bit-identical at
// any worker count. Nearby keys yield unrelated streams (each key passes
// through a full splitmix64 round before mixing).
func Derive(seed uint64, keys ...uint64) *Rand {
	h := seed
	for _, k := range keys {
		x := k
		h ^= splitmix64(&x)
		// Stir between keys so (a,b) and (b,a) land on different states.
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	}
	return New(h)
}

// Split derives an independent generator from r, keyed by label. Deriving
// rather than sharing keeps subsystem streams decoupled: adding draws in
// one module does not perturb another module's sequence.
func (r *Rand) Split(label string) *Rand {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). A non-positive n yields 0 (the
// only index an empty or degenerate range can offer) without consuming a
// draw, so callers never crash on an empty pool.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Rand) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)). mu and sigma are the parameters of
// the underlying normal, not the mean of the result.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) value: heavy-tailed, minimum xm.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean. Small
// means use Knuth's product method; large means (≥ 30, where the product
// method would burn one draw per event) use the normal approximation
// rounded and clamped at zero, which is accurate to well under a count at
// the arrival-process scales the load generator drives. A non-positive or
// NaN mean yields 0 without consuming a draw.
func (r *Rand) Poisson(mean float64) int {
	if !(mean > 0) {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Norm(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF once; construct with NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf returns a Zipf sampler over n ranks with exponent s > 0. A
// non-positive n is clamped to a single rank.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Rank returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Rank() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of rank i under the sampler.
func (z *Zipf) Weight(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights count as zero; when the sum
// is not positive (including an empty slice) it returns 0 without
// consuming a draw, mirroring Intn's degenerate-pool behavior.
func (r *Rand) WeightedChoice(weights []float64) int {
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return 0
	}
	u := r.Float64() * sum
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
