// Command topogen generates a topology (plus the content provider and CDN
// overlays) and prints a structural summary: AS counts by class,
// relationship counts, footprint sizes, PoP and site placement, and
// degree/path statistics. Useful for eyeballing a scenario before running
// experiments on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"beatbgp"
	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "generation seed")
		eyeballs = flag.Int("eyeballs", 0, "eyeball ASes per region (default 20)")
		routes   = flag.Bool("routes", false, "also compute a sample of BGP routes and print path-length stats")
	)
	flag.Parse()

	// Reject bad flags before the expensive scenario build.
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (flags only)", flag.Args())
	}
	if *eyeballs < 0 {
		return fmt.Errorf("-eyeballs must be non-negative")
	}

	cfg := beatbgp.Config{Seed: *seed}
	if *eyeballs > 0 {
		cfg.Topology.EyeballsPerRegion = *eyeballs
	}
	s, err := beatbgp.NewScenario(cfg)
	if err != nil {
		return err
	}
	t := s.Topo

	byClass := map[topology.Class]int{}
	for _, a := range t.ASes {
		byClass[a.Class]++
	}
	fmt.Printf("cities: %d  physical segments: %d\n", t.Catalog.Len(), t.Graph.NumEdges())
	fmt.Printf("ASes: %d  (tier1 %d, transit %d, eyeball %d, content %d)\n",
		t.NumASes(), byClass[topology.Tier1], byClass[topology.Transit],
		byClass[topology.Eyeball], byClass[topology.Content])
	c2p, p2p, pni := 0, 0, 0
	for _, l := range t.Links {
		switch {
		case l.Rel == topology.C2P:
			c2p++
		case l.Private:
			pni++
		default:
			p2p++
		}
	}
	fmt.Printf("links: %d  (customer-provider %d, public peering %d, PNIs %d)\n",
		len(t.Links), c2p, p2p, pni)
	fmt.Printf("prefixes: %d (CIDRs %s .. %s)\n", len(t.Prefixes),
		t.Prefixes[0].CIDR, t.Prefixes[len(t.Prefixes)-1].CIDR)

	fmt.Printf("\nprovider %s: %d PoPs, DC at %s\n",
		s.Prov.AS.Name, len(s.Prov.PoPs), t.Catalog.City(s.Prov.DC).Name)
	var popNames []string
	for _, c := range s.Prov.PoPs {
		popNames = append(popNames, t.Catalog.City(c).Name)
	}
	sort.Strings(popNames)
	fmt.Printf("  PoPs: %v\n", popNames)

	var siteNames []string
	for _, site := range s.CDN.Sites {
		siteNames = append(siteNames, t.Catalog.City(site.City).Name)
	}
	sort.Strings(siteNames)
	fmt.Printf("cdn: %d sites: %v\n", len(s.CDN.Sites), siteNames)

	if *routes {
		oracle := bgp.NewOracle(t)
		lens := map[int]int{}
		for i, p := range t.Prefixes {
			if i%7 != 0 {
				continue
			}
			rib, err := oracle.ToPrefix(p)
			if err != nil {
				return err
			}
			for as := 0; as < t.NumASes(); as++ {
				if r := rib.Best(as); r.Valid {
					lens[r.PathLen()]++
				}
			}
		}
		fmt.Println("\nsampled AS-path length distribution:")
		var keys []int
		for k := range lens {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Printf("  len %d: %d routes\n", k, lens[k])
		}
	}
	return nil
}
