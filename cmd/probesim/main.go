// Command probesim demonstrates the measurement-platform substrate: it
// stands up the cloud provider's Premium and Standard tier targets and
// issues Speedchecker-style pings and traceroutes from a day's rotation of
// vantage points, printing per-VP results and the credit bill.
package main

import (
	"flag"
	"fmt"
	"os"

	"beatbgp"
	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/measure"
	"beatbgp/internal/netpath"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "probesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Uint64("seed", 42, "scenario seed")
		n     = flag.Int("n", 12, "vantage points to probe")
		day   = flag.Int("day", 0, "rotation day")
		trace = flag.Bool("trace", false, "print a full city-level traceroute for the first vantage point")
	)
	flag.Parse()

	// Reject bad flags before the expensive scenario build.
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (flags only)", flag.Args())
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	if *day < 0 {
		return fmt.Errorf("-day must be non-negative")
	}

	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: *seed})
	if err != nil {
		return err
	}
	premRIB, err := bgp.Compute(s.Topo, []bgp.Announcement{s.Prov.PremiumAnnouncement()})
	if err != nil {
		return err
	}
	stdRIB, err := bgp.Compute(s.Topo, []bgp.Announcement{s.Prov.StandardAnnouncement()})
	if err != nil {
		return err
	}
	platform := measure.New(s.Topo, s.Sim, measure.Config{Seed: *seed})
	target := func(name string, rib *bgp.RIB) measure.Target {
		return measure.Target{
			Name: name,
			Route: func(vp measure.VantagePoint) (netpath.Route, error) {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return netpath.Route{}, fmt.Errorf("unreachable")
				}
				public, _, _, err := s.Prov.EntryAndWAN(s.Res, r, vp.City)
				return public, err
			},
			ExtraRTTMs: func(vp measure.VantagePoint) float64 {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return 0
				}
				if _, _, wanKm, err := s.Prov.EntryAndWAN(s.Res, r, vp.City); err == nil {
					return wanKm * geo.FiberRTTMsPerKm
				}
				return 0
			},
		}
	}
	prem := target("premium", premRIB)
	std := target("standard", stdRIB)

	fmt.Printf("%-6s %-16s %-14s %10s %10s %12s\n",
		"vp", "city", "as", "prem_ms", "std_ms", "prem_ingress")
	probed := 0
	for _, vp := range platform.Rotation(*day, 4**n) {
		if probed >= *n {
			break
		}
		p1, err1 := platform.Ping(vp, prem, 9*60)
		p2, err2 := platform.Ping(vp, std, 9*60)
		if err1 != nil || err2 != nil {
			continue
		}
		tr, err := platform.Traceroute(vp, prem)
		ingress := "?"
		if err == nil && tr.IngressKnown {
			ingress = fmt.Sprintf("%.0fkm", tr.IngressDistKm)
		}
		fmt.Printf("vp%-4d %-16s %-14s %10.1f %10.1f %12s\n",
			vp.ID, s.Topo.Catalog.City(vp.City).Name, s.Topo.ASes[vp.AS].Name, p1, p2, ingress)
		if *trace && probed == 0 {
			if res, err := platform.Traceroute(vp, prem); err == nil {
				fmt.Printf("  traceroute (premium) from %s:\n", s.Topo.Catalog.City(vp.City).Name)
				acc := 0.0
				for i, h := range res.Route.Hops {
					acc += h.Km
					fmt.Printf("    %2d  %-14s %-16s -> %-16s %8.0f km  ~%.1f ms\n",
						i+1, s.Topo.ASes[h.AS].Name,
						s.Topo.Catalog.City(h.Ingress).Name, s.Topo.Catalog.City(h.Egress).Name,
						h.Km, acc*0.01)
				}
			}
		}
		probed++
	}
	fmt.Printf("\ncredits used: %d\n", platform.CreditsUsed())
	return nil
}
