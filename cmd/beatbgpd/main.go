// Command beatbgpd is the long-running route/latency oracle: it builds
// a world from the content-keyed build graph, freezes it, and answers
// concurrent HTTP/JSON queries until drained.
//
// Usage:
//
//	beatbgpd [-addr HOST:PORT] [-seed N] [-days N] [-eyeballs N]
//	         [-workers N] [-engine matbgp|oracle] [-hold SEC] [-bfd]
//	         [-max-inflight N] [-max-queue N] [-query-timeout DUR]
//	         [-grace DUR] [-chaos-seed N] [-chaos-latency-p P]
//	         [-chaos-latency-ms MS] [-chaos-err-p P] [-chaos-stall-p P]
//	         [-chaos-stall-ms MS]
//
// The query surface (see internal/serve):
//
//	GET  /world                          world shape + content key
//	GET  /catchment?prefix=N[&epoch=E]   client prefix → front-end site
//	GET  /latency?prefix=N[&t=MIN]       BGP-preferred vs best alternate
//	POST /whatif                         deltas + nested query on a scratch chain
//	GET  /epoch · POST /epoch            read / advance the live fault timeline
//	GET  /healthz · GET /readyz          liveness / readiness probes
//
// Every response is byte-identical to the library answer for the same
// query against the same world key — engine choice, concurrency, and
// restarts never change bytes. Under overload the daemon sheds with
// typed 429s (bounded admission), cuts stalled work at the -query-timeout
// deadline (504), and serves degraded answers ("degraded":true, a
// last-good epoch) when a repair chain is failing behind its circuit
// breaker. SIGINT/SIGTERM drains gracefully: /readyz flips to 503,
// in-flight requests get the -grace period to finish, a second signal
// force-quits. Status lines go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beatbgp"
	"beatbgp/internal/serve"
	"beatbgp/internal/serve/chaos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "beatbgpd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8379", "listen address for the query surface")
		seed     = flag.Uint64("seed", 42, "world seed; the frozen world is deterministic in it")
		days     = flag.Int("days", 0, "override Edge-Fabric trace length in days (default 10)")
		eyeballs = flag.Int("eyeballs", 0, "override eyeball ASes per region (default 20)")
		workers  = flag.Int("workers", 0, "parallel worker budget for the world build; 0 means GOMAXPROCS")
		engine   = flag.String("engine", "", "route engine: matbgp (default) or oracle; answers are bit-identical")
		hold     = flag.Float64("hold", 0, "BGP hold timer in seconds for the session layer; 0 means the 36s default")
		bfd      = flag.Bool("bfd", false, "enable BFD fast failure detection on every session")

		maxInflight = flag.Int("max-inflight", 0, "admission limit on concurrently executing queries; 0 means unlimited")
		maxQueue    = flag.Int("max-queue", 0, "admission waiting-room depth beyond -max-inflight; excess sheds with 429")
		queryTO     = flag.Duration("query-timeout", 0, "per-query deadline (e.g. 250ms); 0 means none")
		grace       = flag.Duration("grace", 3*time.Second, "drain grace period for in-flight requests on SIGINT/SIGTERM")

		chaosSeed    = flag.Uint64("chaos-seed", 0, "chaos injector seed (used when any chaos probability is set)")
		chaosLatP    = flag.Float64("chaos-latency-p", 0, "chaos: per-query probability of injected transport latency")
		chaosLatMs   = flag.Float64("chaos-latency-ms", 0, "chaos: mean injected transport latency in ms")
		chaosErrP    = flag.Float64("chaos-err-p", 0, "chaos: per-attempt probability of an injected repair-chain error")
		chaosStallP  = flag.Float64("chaos-stall-p", 0, "chaos: per-attempt probability of a repair-chain stall")
		chaosStallMs = flag.Float64("chaos-stall-ms", 0, "chaos: repair-chain stall duration in ms")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (flags only)", flag.Args())
	}
	if *days < 0 || *eyeballs < 0 || *workers < 0 || *hold < 0 {
		return fmt.Errorf("-days, -eyeballs, -workers and -hold must be non-negative")
	}
	if *maxInflight < 0 || *maxQueue < 0 || *queryTO < 0 || *grace < 0 {
		return fmt.Errorf("-max-inflight, -max-queue, -query-timeout and -grace must be non-negative")
	}
	chaosCfg := chaos.Config{
		Seed:          *chaosSeed,
		LatencyP:      *chaosLatP,
		LatencyMeanMs: *chaosLatMs,
		RepairErrP:    *chaosErrP,
		StallP:        *chaosStallP,
		StallMs:       *chaosStallMs,
	}
	if err := chaosCfg.Validate(); err != nil {
		return err
	}

	cfg := beatbgp.Config{Seed: *seed, Workers: *workers, Engine: *engine}
	if *days > 0 {
		cfg.Workload.Days = *days
	}
	if *eyeballs > 0 {
		cfg.Topology.EyeballsPerRegion = *eyeballs
	}
	if *hold > 0 {
		cfg.Session.HoldSec = *hold
	}
	cfg.Session.BFD = *bfd

	t0 := time.Now()
	s, err := beatbgp.NewScenario(cfg)
	if err != nil {
		return err
	}
	w, err := s.Freeze()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "beatbgpd: world %s frozen in %v (%d ASes, %d prefixes, %d epochs)\n",
		w.Key, time.Since(t0).Round(time.Millisecond), w.Topo.NumASes(), len(w.Topo.Prefixes), w.Epochs.Len())

	srv := serve.New(w,
		serve.WithAdmission(*maxInflight, *maxQueue),
		serve.WithQueryTimeout(*queryTO),
	)
	if chaosCfg.LatencyP > 0 || chaosCfg.RepairErrP > 0 || chaosCfg.StallP > 0 {
		inj, err := chaos.New(chaosCfg)
		if err != nil {
			return err
		}
		srv.SetChaos(inj)
		fmt.Fprintln(os.Stderr, "beatbgpd: chaos injection ENABLED (deterministic; for soak testing, not production)")
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "beatbgpd: serving on http://%s\n", bound)

	// Drain on SIGINT/SIGTERM: readiness flips to draining, accepting
	// stops, in-flight requests get -grace to finish, then the rest are
	// cut. A second signal force-quits immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	got := <-sig
	fmt.Fprintf(os.Stderr, "beatbgpd: %v: draining (in-flight requests get %v; repeat to force-quit)\n", got, *grace)
	go func() {
		<-sig
		os.Exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "beatbgpd: drained")
	return nil
}
