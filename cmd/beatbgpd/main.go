// Command beatbgpd is the long-running route/latency oracle: it builds
// a world from the content-keyed build graph, freezes it, and answers
// concurrent HTTP/JSON queries until drained.
//
// Usage:
//
//	beatbgpd [-addr HOST:PORT] [-seed N] [-days N] [-eyeballs N]
//	         [-workers N] [-engine matbgp|oracle] [-hold SEC] [-bfd]
//
// The query surface (see internal/serve):
//
//	GET  /world                          world shape + content key
//	GET  /catchment?prefix=N[&epoch=E]   client prefix → front-end site
//	GET  /latency?prefix=N[&t=MIN]       BGP-preferred vs best alternate
//	POST /whatif                         deltas + nested query on a scratch chain
//	GET  /epoch · POST /epoch            read / advance the live fault timeline
//
// Every response is byte-identical to the library answer for the same
// query against the same world key — engine choice, concurrency, and
// restarts never change bytes. SIGINT/SIGTERM drains gracefully:
// in-flight requests get a grace period to finish, a second signal
// force-quits. Status lines go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beatbgp"
	"beatbgp/internal/serve"
)

// drainGrace is how long in-flight requests may keep running after a
// drain signal — the same discipline as cmd/beatbgp's supervisor.
const drainGrace = 3 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "beatbgpd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8379", "listen address for the query surface")
		seed     = flag.Uint64("seed", 42, "world seed; the frozen world is deterministic in it")
		days     = flag.Int("days", 0, "override Edge-Fabric trace length in days (default 10)")
		eyeballs = flag.Int("eyeballs", 0, "override eyeball ASes per region (default 20)")
		workers  = flag.Int("workers", 0, "parallel worker budget for the world build; 0 means GOMAXPROCS")
		engine   = flag.String("engine", "", "route engine: matbgp (default) or oracle; answers are bit-identical")
		hold     = flag.Float64("hold", 0, "BGP hold timer in seconds for the session layer; 0 means the 36s default")
		bfd      = flag.Bool("bfd", false, "enable BFD fast failure detection on every session")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (flags only)", flag.Args())
	}
	if *days < 0 || *eyeballs < 0 || *workers < 0 || *hold < 0 {
		return fmt.Errorf("-days, -eyeballs, -workers and -hold must be non-negative")
	}

	cfg := beatbgp.Config{Seed: *seed, Workers: *workers, Engine: *engine}
	if *days > 0 {
		cfg.Workload.Days = *days
	}
	if *eyeballs > 0 {
		cfg.Topology.EyeballsPerRegion = *eyeballs
	}
	if *hold > 0 {
		cfg.Session.HoldSec = *hold
	}
	cfg.Session.BFD = *bfd

	t0 := time.Now()
	s, err := beatbgp.NewScenario(cfg)
	if err != nil {
		return err
	}
	w, err := s.Freeze()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "beatbgpd: world %s frozen in %v (%d ASes, %d prefixes, %d epochs)\n",
		w.Key, time.Since(t0).Round(time.Millisecond), w.Topo.NumASes(), len(w.Topo.Prefixes), w.Epochs.Len())

	srv := serve.New(w)
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "beatbgpd: serving on http://%s\n", bound)

	// Drain on SIGINT/SIGTERM: stop accepting, give in-flight requests
	// drainGrace to finish, then cut the rest. A second signal
	// force-quits immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	got := <-sig
	fmt.Fprintf(os.Stderr, "beatbgpd: %v: draining (in-flight requests get %v; repeat to force-quit)\n", got, drainGrace)
	go func() {
		<-sig
		os.Exit(130)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "beatbgpd: drained")
	return nil
}
