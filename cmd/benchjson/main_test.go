package main

import (
	"bufio"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) ([]Record, int) {
	t.Helper()
	doc, skipped, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return doc.Benchmarks, skipped
}

func TestParseFullLine(t *testing.T) {
	recs, skipped := parseString(t, strings.Join([]string{
		"pkg: beatbgp/internal/core",
		"BenchmarkBuild-8   	     100	  11215634 ns/op	  524288 B/op	    1024 allocs/op",
	}, "\n"))
	if skipped != 0 || len(recs) != 1 {
		t.Fatalf("got %d records, %d skipped", len(recs), skipped)
	}
	r := recs[0]
	if r.Package != "beatbgp/internal/core" || r.Name != "BenchmarkBuild-8" ||
		r.Iterations != 100 || r.NsPerOp != 11215634 || r.BytesPerOp != 524288 || r.AllocsPerOp != 1024 {
		t.Fatalf("bad record: %+v", r)
	}
}

// Benchmark lines without the optional metrics — or with none at all —
// must still produce records with whatever parsed.
func TestParseMissingMetrics(t *testing.T) {
	recs, skipped := parseString(t, strings.Join([]string{
		"BenchmarkNoMem-4    200    5000 ns/op",
		"BenchmarkAllocsOnly-4    300    7000 ns/op    12 allocs/op",
		"BenchmarkBare-4    400",
	}, "\n"))
	if skipped != 0 || len(recs) != 3 {
		t.Fatalf("got %d records, %d skipped, want 3/0", len(recs), skipped)
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkNoMem-4"]; r.NsPerOp != 5000 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("no-mem record: %+v", r)
	}
	if r := byName["BenchmarkAllocsOnly-4"]; r.NsPerOp != 7000 || r.AllocsPerOp != 12 || r.BytesPerOp != 0 {
		t.Errorf("allocs-only record: %+v", r)
	}
	if r := byName["BenchmarkBare-4"]; r.Iterations != 400 || r.NsPerOp != 0 {
		t.Errorf("bare record: %+v", r)
	}
}

// A garbled metric value drops that metric; a garbled iteration count
// drops the line (counted) — neither kills the parse.
func TestParseGarbledTolerance(t *testing.T) {
	recs, skipped := parseString(t, strings.Join([]string{
		"BenchmarkHalfGood-2    100    NaNbad ns/op    64 B/op",
		"BenchmarkDead 99999999999999999999 10 ns/op",
		"BenchmarkFine-2    50    123 ns/op",
	}, "\n"))
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (overflowed iteration count)", skipped)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkHalfGood-2"]; r.NsPerOp != 0 || r.BytesPerOp != 64 {
		t.Errorf("half-good record kept the garbled metric or lost the good one: %+v", r)
	}
	if _, ok := byName["BenchmarkFine-2"]; !ok {
		t.Error("clean line after a garbled one was lost")
	}
}
