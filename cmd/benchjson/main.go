// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_1.json
//
// Every "BenchmarkName-P  N  X ns/op  [Y B/op  Z allocs/op]" line becomes
// one record tagged with the package from the preceding "pkg:" line.
// Non-benchmark output (experiment tables, PASS/ok lines) is ignored, so
// the tool can eat the full test stream.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted file: environment header plus sorted records.
type Document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(sc *bufio.Scanner) (Document, error) {
	var doc Document
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				return doc, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
			}
			ns, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return doc, fmt.Errorf("benchjson: bad ns/op in %q: %w", line, err)
			}
			rec := Record{Package: pkg, Name: m[1], Iterations: iters, NsPerOp: ns}
			if m[4] != "" {
				rec.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				rec.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
			}
			doc.Benchmarks = append(doc.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		if doc.Benchmarks[i].Package != doc.Benchmarks[j].Package {
			return doc.Benchmarks[i].Package < doc.Benchmarks[j].Package
		}
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(doc.Benchmarks), *out)
}
