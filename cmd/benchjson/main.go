// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_1.json
//
// Every "BenchmarkName-P  N  X ns/op  [Y B/op  Z allocs/op]" line becomes
// one record tagged with the package from the preceding "pkg:" line. The
// document header carries goos/goarch/cpu from the stream plus the route
// engine, worker budget, and git commit (-engine/-workers/-commit, with
// auto-detected defaults), so committed baselines attribute their numbers
// to a configuration and a revision.
// Non-benchmark output (experiment tables, PASS/ok lines) is ignored, and
// benchmark lines with missing or unparsable metrics are kept with the
// metrics that did parse — a partially garbled stream (an interrupted
// run, a benchmark that reports only custom units) degrades to fewer
// fields, not a dead tool.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the serving layer's
	// "queries/s" sustained-throughput figure), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted file: environment header plus sorted records.
// Engine, Workers, and Commit attribute the numbers to a route engine,
// a parallelism budget, and a source revision, so a series of BENCH_n
// baselines reads as a perf trajectory rather than disconnected points.
type Document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Engine     string   `json:"engine,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

var (
	benchHead = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\b(.*)`)
	// metricPair matches every "value unit" pair on a benchmark line:
	// the three standard units fill the typed fields, anything else
	// (custom b.ReportMetric units like "queries/s") lands in Extra.
	metricPair = regexp.MustCompile(`(\S+)\s+([A-Za-z][\w./%-]*)`)
)

// parse eats the full test stream. It returns the document plus the
// number of benchmark-shaped lines it had to skip entirely (unparsable
// iteration count); individual bad metrics are dropped, not fatal.
func parse(sc *bufio.Scanner) (Document, int, error) {
	var doc Document
	pkg, skipped := "", 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			m := benchHead.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				skipped++
				continue
			}
			rec := Record{Package: pkg, Name: m[1], Iterations: iters}
			for _, pm := range metricPair.FindAllStringSubmatch(m[3], -1) {
				v, err := strconv.ParseFloat(pm[1], 64)
				if err != nil {
					continue // tolerate one garbled metric, keep the rest
				}
				switch pm[2] {
				case "ns/op":
					rec.NsPerOp = v
				case "B/op":
					rec.BytesPerOp = v
				case "allocs/op":
					rec.AllocsPerOp = v
				default:
					if rec.Extra == nil {
						rec.Extra = map[string]float64{}
					}
					rec.Extra[pm[2]] = v
				}
			}
			doc.Benchmarks = append(doc.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, skipped, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		if doc.Benchmarks[i].Package != doc.Benchmarks[j].Package {
			return doc.Benchmarks[i].Package < doc.Benchmarks[j].Package
		}
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, skipped, nil
}

// gitCommit best-effort resolves the working tree's short revision; a
// run outside a git checkout simply omits the field.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	if err := run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(in io.Reader) error {
	out := flag.String("o", "", "output file (default stdout)")
	engine := flag.String("engine", "matbgp", "route engine the benchmarks exercised")
	workers := flag.Int("workers", 0, "worker budget of the run (0 = GOMAXPROCS)")
	commit := flag.String("commit", "", "source revision (default: git rev-parse --short HEAD)")
	flag.Parse()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc, skipped, err := parse(sc)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: skipped %d unparsable benchmark line(s)\n", skipped)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	doc.Engine = *engine
	doc.Workers = *workers
	if doc.Workers == 0 {
		doc.Workers = runtime.GOMAXPROCS(0)
	}
	doc.Commit = *commit
	if doc.Commit == "" {
		doc.Commit = gitCommit()
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return nil
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(doc.Benchmarks), *out)
	return nil
}
