// Command beatbgp runs the paper's experiments against a freshly built
// scenario and prints the regenerated figure/table data.
//
// Usage:
//
//	beatbgp [-seed N] [-exp id[,id...]] [-list] [-days N] [-eyeballs N] [-timeout D] [-workers N]
//
// With no -exp, every registered experiment runs in the paper's order.
// Experiments execute concurrently on the shared scenario (bounded by
// -workers, default GOMAXPROCS) and print in registry order; output is
// byte-identical at any worker count. Unknown experiment IDs and
// nonsensical flag values are rejected up front, before any scenario is
// built, with a non-zero exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"beatbgp"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "scenario seed; all results are deterministic in it")
		exp      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		days     = flag.Int("days", 0, "override Edge-Fabric trace length in days (default 10)")
		eyeballs = flag.Int("eyeballs", 0, "override eyeball ASes per region (default 20)")
		asJSON   = flag.Bool("json", false, "emit each result as JSON instead of text")
		outDir   = flag.String("out", "", "also write <id>.json and per-series/table CSVs into this directory")
		plot     = flag.Bool("plot", false, "render each series as an ASCII chart")
		seeds    = flag.Int("seeds", 0, "run each experiment across N seeds (fresh worlds) and report mean/min/max per table cell")
		timeout  = flag.Duration("timeout", 0, "per-experiment deadline (e.g. 2m); 0 means none")
		workers  = flag.Int("workers", 0, "parallel worker budget for sweeps and the experiment runner; 0 means GOMAXPROCS")
		bstats   = flag.Bool("buildstats", false, "print the scenario build report (per-stage wall time, rebuilt vs reused)")
	)
	flag.Parse()

	if *list {
		for _, e := range beatbgp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "beatbgp: "+format+"\n", args...)
		os.Exit(1)
	}

	// Validate everything before the expensive scenario build so a typo
	// cannot produce minutes of partial output followed by a late error.
	if flag.NArg() > 0 {
		fail("unexpected arguments %q (flags only)", flag.Args())
	}
	if *days < 0 || *eyeballs < 0 || *seeds < 0 || *workers < 0 {
		fail("-days, -eyeballs, -seeds and -workers must be non-negative")
	}
	if *timeout < 0 {
		fail("-timeout must be non-negative")
	}
	if *seeds > 1 && *timeout > 0 {
		fail("-timeout is per single-scenario experiment; it does not apply under -seeds")
	}
	known := map[string]bool{}
	for _, e := range beatbgp.Experiments() {
		known[e.ID] = true
	}
	var ids []string
	if *exp == "" {
		for _, e := range beatbgp.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fail("unknown experiment %q (see -list)", id)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			fail("-exp named no experiments")
		}
	}

	cfg := beatbgp.Config{Seed: *seed, Workers: *workers}
	if *days > 0 {
		cfg.Workload.Days = *days
	}
	if *eyeballs > 0 {
		cfg.Topology.EyeballsPerRegion = *eyeballs
	}

	start := time.Now()
	s, err := beatbgp.NewScenario(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("# scenario seed=%d built in %v: %d ASes, %d links, %d prefixes\n",
		*seed, time.Since(start).Round(time.Millisecond),
		s.Topo.NumASes(), len(s.Topo.Links), len(s.Topo.Prefixes))
	if *bstats {
		fmt.Print(s.BuildReport().Render())
	}

	// Single-scenario runs go through the parallel runner: experiments
	// execute concurrently on the shared world, results come back (and
	// print) in the requested order, byte-identical at any worker count.
	// Multi-seed runs build a fresh world per seed and stay per-ID.
	var results []beatbgp.Result
	t0 := time.Now()
	if *seeds > 1 {
		for _, id := range ids {
			seedList := make([]uint64, *seeds)
			for i := range seedList {
				seedList[i] = *seed + uint64(i)
			}
			r, err := beatbgp.RunSeeds(cfg, id, seedList)
			if err != nil {
				fail("%s: %v", id, err)
			}
			results = append(results, r)
		}
	} else {
		var err error
		results, err = beatbgp.RunManyParallel(context.Background(), s, ids, *timeout)
		if err != nil {
			// Render the completed prefix before failing so partial output
			// still lands in order.
			for _, r := range results {
				fmt.Printf("\n# %s\n%s", r.ID, r.Render())
			}
			fail("%s: %v", ids[len(results)], err)
		}
	}
	fmt.Printf("# %d experiment(s) completed in %v\n", len(results), time.Since(t0).Round(time.Millisecond))

	for _, r := range results {
		fmt.Printf("\n# %s\n", r.ID)
		switch {
		case *asJSON:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(r); err != nil {
				fail("%s: %v", r.ID, err)
			}
		default:
			fmt.Print(r.Render())
			if *plot {
				for _, sr := range r.Series {
					fmt.Print(sr.Plot(64, 12))
				}
			}
		}
		if *outDir != "" {
			if err := writeResult(*outDir, r); err != nil {
				fail("%s: %v", r.ID, err)
			}
		}
	}
}

var unsafePath = regexp.MustCompile(`[^a-zA-Z0-9._-]+`)

func slug(s string) string { return unsafePath.ReplaceAllString(s, "_") }

// writeResult persists one experiment's output: a JSON document plus one
// CSV per series and per table.
func writeResult(dir string, r beatbgp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, r.ID+".json"), js, 0o644); err != nil {
		return err
	}
	for _, sr := range r.Series {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.%s.csv", r.ID, slug(sr.Name))))
		if err != nil {
			return err
		}
		werr := sr.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	for _, tb := range r.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.%s.csv", r.ID, slug(tb.Name))))
		if err != nil {
			return err
		}
		werr := tb.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
