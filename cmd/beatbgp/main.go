// Command beatbgp runs the paper's experiments under the crash-safe
// supervisor and prints the regenerated figure/table data.
//
// Usage:
//
//	beatbgp [-seed N] [-exp id[,id...]] [-list] [-days N] [-eyeballs N]
//	        [-seeds N] [-timeout D] [-watchdog D] [-retries N] [-workers N]
//	        [-engine matbgp|oracle] [-run-dir DIR] [-resume DIR] [-hold SEC]
//	        [-bfd]
//
// With no -exp, every registered experiment runs in the paper's order.
// Every run is a supervised campaign over (experiment, seed) cells:
// panics inside an experiment are isolated (siblings keep running),
// transient failures retry up to -retries times, -watchdog warns about
// slow cells, and with -run-dir every completed cell is checkpointed so
// -resume can finish an interrupted campaign without re-running done
// work. SIGINT/SIGTERM drains gracefully: in-flight experiments get a
// short grace period to finish (and checkpoint), then partial results
// print with an INCOMPLETE banner.
//
// Result data goes to stdout and is byte-identical at any worker count —
// a resumed campaign renders exactly what an uninterrupted one would.
// Status and timing lines go to stderr. Exit code 0 means every cell
// completed, 2 means a partial run (see the manifest in the run
// directory), and 1 means a hard failure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"beatbgp"
)

// drainGrace is how long in-flight experiments may keep running after a
// drain signal, so nearly-done work still lands in the checkpoint dir.
const drainGrace = 3 * time.Second

func main() {
	err := run()
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "beatbgp: %v\n", err)
	if errors.Is(err, beatbgp.ErrPartial) {
		os.Exit(2)
	}
	os.Exit(1)
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "scenario seed; all results are deterministic in it")
		exp      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		days     = flag.Int("days", 0, "override Edge-Fabric trace length in days (default 10)")
		eyeballs = flag.Int("eyeballs", 0, "override eyeball ASes per region (default 20)")
		asJSON   = flag.Bool("json", false, "emit each result as JSON instead of text")
		outDir   = flag.String("out", "", "also write <id>.json and per-series/table CSVs into this directory")
		plot     = flag.Bool("plot", false, "render each series as an ASCII chart")
		seeds    = flag.Int("seeds", 0, "run each experiment across N seeds (fresh worlds) and report mean/min/max per table cell")
		timeout  = flag.Duration("timeout", 0, "per-attempt experiment deadline (e.g. 2m); 0 means none")
		watchdog = flag.Duration("watchdog", 0, "warn on stderr when an experiment outlives this; it keeps running")
		retries  = flag.Int("retries", 0, "extra attempts granted to transiently failing cells (timeouts)")
		runDir   = flag.String("run-dir", "", "checkpoint directory: completed cells and the run manifest are persisted here")
		resume   = flag.String("resume", "", "resume an interrupted campaign from this run directory (implies -run-dir)")
		workers  = flag.Int("workers", 0, "parallel worker budget for sweeps and the experiment runner; 0 means GOMAXPROCS")
		engine   = flag.String("engine", "", "route engine: matbgp (compact batch engine, the default) or oracle (recursive reference); outputs are bit-identical")
		hold     = flag.Float64("hold", 0, "BGP hold timer in seconds for the session layer (keepalive scales to hold/3); 0 means the 36s default")
		bfd      = flag.Bool("bfd", false, "enable BFD fast failure detection on every session (300ms x3 by default)")
		bstats   = flag.Bool("buildstats", false, "print the scenario build report (per-stage wall time, rebuilt vs reused)")
	)
	flag.Parse()

	if *list {
		for _, e := range beatbgp.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	// Validate everything before the expensive scenario build so a typo
	// cannot produce minutes of partial output followed by a late error.
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (flags only)", flag.Args())
	}
	if *days < 0 || *eyeballs < 0 || *seeds < 0 || *workers < 0 || *retries < 0 || *hold < 0 {
		return fmt.Errorf("-days, -eyeballs, -seeds, -workers, -retries and -hold must be non-negative")
	}
	if *timeout < 0 || *watchdog < 0 {
		return fmt.Errorf("-timeout and -watchdog must be non-negative")
	}
	if *resume != "" {
		if *runDir != "" && *runDir != *resume {
			return fmt.Errorf("-resume %q conflicts with -run-dir %q", *resume, *runDir)
		}
		*runDir = *resume
	}
	known := map[string]bool{}
	for _, e := range beatbgp.Experiments() {
		known[e.ID] = true
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				return fmt.Errorf("unknown experiment %q (see -list)", id)
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return fmt.Errorf("-exp named no experiments")
		}
	}
	var seedList []uint64
	if *seeds > 1 {
		for i := 0; i < *seeds; i++ {
			seedList = append(seedList, *seed+uint64(i))
		}
	}

	if *engine != "" && !validEngine(*engine) {
		return fmt.Errorf("-engine %q is not a route engine (valid engines: %s)",
			*engine, strings.Join(beatbgp.Engines(), ", "))
	}

	cfg := beatbgp.Config{Seed: *seed, Workers: *workers, Engine: *engine}
	if *days > 0 {
		cfg.Workload.Days = *days
	}
	if *eyeballs > 0 {
		cfg.Topology.EyeballsPerRegion = *eyeballs
	}
	if *hold > 0 {
		cfg.Session.HoldSec = *hold
	}
	cfg.Session.BFD = *bfd

	// Drain on SIGINT/SIGTERM: cancel the campaign context, give in-flight
	// experiments drainGrace to finish, and still render partial results
	// plus the manifest. A second signal force-quits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "beatbgp: %v: draining (in-flight experiments get %v; repeat to force-quit)\n", s, drainGrace)
		cancel()
		<-sig
		os.Exit(130)
	}()

	// Supervisor notifications are operator feedback: stderr, so stdout
	// stays a pure, byte-comparable result stream.
	events := make(chan beatbgp.SupervisorEvent, 256)
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			printEvent(ev, *bstats)
		}
	}()

	t0 := time.Now()
	rep, err := beatbgp.RunCampaign(ctx,
		beatbgp.Campaign{Base: cfg, IDs: ids, Seeds: seedList},
		beatbgp.SupervisorConfig{
			RunDir:      *runDir,
			Resume:      *resume != "",
			Retries:     *retries,
			BackoffSeed: *seed,
			Timeout:     *timeout,
			Watchdog:    *watchdog,
			Grace:       drainGrace,
			Events:      events,
		})
	close(events) // RunCampaign has returned; no sender remains
	<-eventsDone
	if err != nil {
		return err
	}

	results, err := rep.FinalResults()
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("\n# %s\n", r.ID)
		switch {
		case *asJSON:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(r); err != nil {
				return fmt.Errorf("%s: %v", r.ID, err)
			}
		default:
			fmt.Print(r.Render())
			if *plot {
				for _, sr := range r.Series {
					fmt.Print(sr.Plot(64, 12))
				}
			}
		}
		if *outDir != "" {
			if err := writeResult(*outDir, r); err != nil {
				return fmt.Errorf("%s: %v", r.ID, err)
			}
		}
	}

	done := len(rep.Outcomes) - len(rep.IncompleteCells())
	fmt.Fprintf(os.Stderr, "# %d/%d cells completed in %v\n",
		done, len(rep.Outcomes), time.Since(t0).Round(time.Millisecond))
	if !rep.Complete() {
		fmt.Fprint(os.Stderr, rep.Banner())
		return fmt.Errorf("%w: %d of %d cells incomplete", beatbgp.ErrPartial,
			len(rep.IncompleteCells()), len(rep.Outcomes))
	}
	return nil
}

func printEvent(ev beatbgp.SupervisorEvent, bstats bool) {
	switch ev.Kind {
	case beatbgp.EventWorld:
		fmt.Fprintf(os.Stderr, "# world seed=%d built in %v\n", ev.Seed, ev.Wall.Round(time.Millisecond))
		if bstats && ev.Detail != "" {
			fmt.Fprint(os.Stderr, ev.Detail)
		}
	case beatbgp.EventSlow:
		fmt.Fprintf(os.Stderr, "# slow: %s still running after %v (attempt %d)\n",
			ev.Cell, ev.Wall.Round(time.Second), ev.Attempt)
	case beatbgp.EventRetry:
		fmt.Fprintf(os.Stderr, "# retry: %s attempt %d failed (%s); retrying in %v\n",
			ev.Cell, ev.Attempt, ev.Err, ev.Wall.Round(time.Millisecond))
	case beatbgp.EventCheckpoint:
		fmt.Fprintf(os.Stderr, "# checkpoint: %s\n", ev.Cell)
	case beatbgp.EventResumed:
		fmt.Fprintf(os.Stderr, "# resumed: %s (skipping re-run)\n", ev.Cell)
	case beatbgp.EventBadCheckpoint:
		fmt.Fprintf(os.Stderr, "# warning: unusable checkpoint for %s (%s); re-running\n", ev.Cell, ev.Err)
	}
}

var unsafePath = regexp.MustCompile(`[^a-zA-Z0-9._-]+`)

func slug(s string) string { return unsafePath.ReplaceAllString(s, "_") }

// writeResult persists one experiment's output: a JSON document plus one
// CSV per series and per table.
func writeResult(dir string, r beatbgp.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, r.ID+".json"), js, 0o644); err != nil {
		return err
	}
	for _, sr := range r.Series {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.%s.csv", r.ID, slug(sr.Name))))
		if err != nil {
			return err
		}
		werr := sr.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	for _, tb := range r.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.%s.csv", r.ID, slug(tb.Name))))
		if err != nil {
			return err
		}
		werr := tb.WriteCSV(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// validEngine reports whether name is a registered route engine.
func validEngine(name string) bool {
	for _, e := range beatbgp.Engines() {
		if name == e {
			return true
		}
	}
	return false
}
