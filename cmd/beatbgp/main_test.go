package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beatbgp"
)

// runBin executes the built binary and returns its stdout and exit code.
func runBin(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	if code != 0 {
		t.Logf("stderr:\n%s", errb.String())
	}
	return out.String(), code
}

// TestStressKillResume is the end-to-end crash-safety check behind
// `make stress-harness`: it SIGKILLs a live campaign the moment its
// first checkpoint lands, resumes it, and asserts the resumed stdout is
// byte-identical to an uninterrupted run's — with zero re-runs of
// checkpointed cells per the manifest. Gated behind STRESS_HARNESS=1
// because it builds the binary and runs three full campaigns.
func TestStressKillResume(t *testing.T) {
	if os.Getenv("STRESS_HARNESS") == "" {
		t.Skip("set STRESS_HARNESS=1 (or run `make stress-harness`) to enable")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "beatbgp")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	common := []string{
		"-seed", "42", "-seeds", "2", "-exp", "t32,fig2,xflap,xdetect",
		"-eyeballs", "6", "-days", "2", "-workers", "2",
	}

	// Baseline: an uninterrupted campaign.
	want, code := runBin(t, bin, append(common, "-run-dir", filepath.Join(tmp, "base"))...)
	if code != 0 {
		t.Fatalf("baseline exited %d", code)
	}
	if want == "" {
		t.Fatal("baseline produced no stdout")
	}

	// Victim: SIGKILL the process as soon as its first checkpoint lands.
	dir := filepath.Join(tmp, "victim")
	victim := exec.Command(bin, append(common, "-run-dir", dir)...)
	victim.Stdout = new(bytes.Buffer)
	victim.Stderr = new(bytes.Buffer)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- victim.Wait() }()
	deadline := time.After(3 * time.Minute)
	killed := false
poll:
	for {
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") && e.Name() != beatbgp.ManifestName {
				victim.Process.Kill() // SIGKILL: no drain, no manifest, maybe a torn temp
				killed = true
				break poll
			}
		}
		select {
		case <-exited:
			// Finished before we could kill it: the resume below degrades
			// to an everything-restored run, which must still match.
			t.Log("victim completed before the kill landed")
			break poll
		case <-deadline:
			victim.Process.Kill()
			t.Fatal("no checkpoint appeared within the deadline")
		case <-time.After(25 * time.Millisecond):
		}
	}
	if killed {
		<-exited
	}

	// Resume must finish the campaign and reproduce the baseline bytes.
	got, code := runBin(t, bin, append(common, "-resume", dir)...)
	if code != 0 {
		t.Fatalf("resume exited %d", code)
	}
	if got != want {
		t.Fatalf("resumed stdout differs from uninterrupted baseline:\n got: %q\nwant: %q", got, want)
	}

	// The manifest must show the checkpointed cells were restored, not
	// re-run: zero attempts on every resumed cell.
	data, err := os.ReadFile(filepath.Join(dir, beatbgp.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m beatbgp.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !m.Complete || m.ExitCode != 0 {
		t.Fatalf("manifest after resume: complete=%v exit=%d", m.Complete, m.ExitCode)
	}
	resumed := 0
	for _, o := range m.Outcomes {
		if o.Status == "resumed" {
			resumed++
			if o.Attempts != 0 {
				t.Errorf("resumed cell %s seed=%d recorded %d attempts, want 0", o.Experiment, o.Seed, o.Attempts)
			}
		}
	}
	if resumed == 0 {
		t.Error("no cell was resumed; the kill landed after completion and the checkpoints were ignored")
	}
}
