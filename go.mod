module beatbgp

go 1.22
