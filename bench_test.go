package beatbgp_test

// The benchmark harness regenerates every table and figure of the paper:
// one benchmark per artifact, each printing the regenerated rows/series
// (once) alongside the timing. Run with:
//
//	go test -bench=. -benchmem
//
// All benchmarks share one default scenario (seed 42), exactly what
// `cmd/beatbgp` builds, so the printed numbers match the CLI's output and
// the values recorded in EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"beatbgp"
)

var (
	scenarioOnce sync.Once
	scenarioVal  *beatbgp.Scenario
	scenarioErr  error

	printMu sync.Mutex
	printed = map[string]bool{}
)

func sharedScenario(b *testing.B) *beatbgp.Scenario {
	b.Helper()
	scenarioOnce.Do(func() {
		scenarioVal, scenarioErr = beatbgp.NewScenario(beatbgp.Config{Seed: 42})
	})
	if scenarioErr != nil {
		b.Fatal(scenarioErr)
	}
	return scenarioVal
}

// benchExperiment runs one experiment per iteration and prints its output
// the first time it completes.
func benchExperiment(b *testing.B, id string) {
	s := sharedScenario(b)
	var res beatbgp.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = beatbgp.Run(s, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printMu.Lock()
	defer printMu.Unlock()
	if !printed[id] {
		printed[id] = true
		fmt.Print(res.Render())
	}
}

// Figures.

func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// In-text tables.

func BenchmarkTableS31(b *testing.B)     { benchExperiment(b, "t31") }
func BenchmarkTableS311(b *testing.B)    { benchExperiment(b, "t311") }
func BenchmarkTableS32(b *testing.B)     { benchExperiment(b, "t32") }
func BenchmarkTableS33(b *testing.B)     { benchExperiment(b, "t33") }
func BenchmarkTableGoodput(b *testing.B) { benchExperiment(b, "t4g") }

// Open-question studies (§3.1.3, §3.2.2, §3.3.2, §4).

func BenchmarkPeeringReduction(b *testing.B)   { benchExperiment(b, "xpeer") }
func BenchmarkGrooming(b *testing.B)           { benchExperiment(b, "xgroom") }
func BenchmarkSingleWAN(b *testing.B)          { benchExperiment(b, "xwan") }
func BenchmarkSplitTCP(b *testing.B)           { benchExperiment(b, "xsplit") }
func BenchmarkRouteDiversity(b *testing.B)     { benchExperiment(b, "xdiv") }
func BenchmarkCapacity(b *testing.B)           { benchExperiment(b, "xcap") }
func BenchmarkSiteOutage(b *testing.B)         { benchExperiment(b, "xdyn") }
func BenchmarkFaultStudy(b *testing.B)         { benchExperiment(b, "xfaults") }
func BenchmarkFaultAvailability(b *testing.B)  { benchExperiment(b, "xavail") }
func BenchmarkDetectionStudy(b *testing.B)     { benchExperiment(b, "xdetect") }
func BenchmarkFlapStorm(b *testing.B)          { benchExperiment(b, "xflap") }
func BenchmarkHybrid(b *testing.B)             { benchExperiment(b, "xhybrid") }
func BenchmarkOdin(b *testing.B)               { benchExperiment(b, "xodin") }
func BenchmarkSiteDensity(b *testing.B)        { benchExperiment(b, "xsites") }
func BenchmarkCatchmentInference(b *testing.B) { benchExperiment(b, "xinfer") }
func BenchmarkCorridor(b *testing.B)           { benchExperiment(b, "xcorridor") }
func BenchmarkQoE(b *testing.B)                { benchExperiment(b, "xqoe") }

// Ablations of the design choices DESIGN.md calls out.

func BenchmarkAblationSharedFate(b *testing.B) { benchExperiment(b, "afate") }
func BenchmarkAblationECS(b *testing.B)        { benchExperiment(b, "aecs") }
func BenchmarkAblationPNI(b *testing.B)        { benchExperiment(b, "apni") }

// BenchmarkScenarioBuild measures world construction alone.
func BenchmarkScenarioBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := beatbgp.NewScenario(beatbgp.Config{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioDerive measures a Net-only derived build on a fixed
// base world: the topology, provider, CDN, DNS mapping, oracle, and
// resolver are shared by pointer, so each iteration pays only for the
// fresh simulator and workload generator. Compare against
// BenchmarkScenarioBuild for the sweep-path win the build graph buys.
func BenchmarkScenarioDerive(b *testing.B) {
	base, err := beatbgp.NewScenario(beatbgp.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := base.Derive(func(c *beatbgp.Config) { c.Net.DisableSharedFate = true })
		if err != nil {
			b.Fatal(err)
		}
	}
}
