// Egress engineering: the paper's §3.1 setting, hands-on. For a handful
// of client prefixes, list the egress routes their serving PoP holds
// (ranked by the provider's BGP policy), measure each route across a day,
// and show what an omniscient performance-aware controller would have
// gained over BGP's pick — usually, almost nothing.
package main

import (
	"fmt"
	"log"

	"beatbgp"
	"beatbgp/internal/netsim"
)

func main() {
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	sim := netsim.New(s.Topo, s.Cfg.Net)
	cat := s.Topo.Catalog

	shown := 0
	for _, p := range s.Topo.Prefixes {
		if shown >= 5 {
			break
		}
		rib, err := s.Oracle.ToPrefix(p)
		if err != nil {
			log.Fatal(err)
		}
		pop := s.Prov.ServingPoP(p.City)
		opts := s.Prov.EgressOptions(rib, pop)
		if len(opts) < 3 {
			continue
		}
		shown++
		fmt.Printf("\nclients in %s served from the %s PoP — %d egress routes:\n",
			cat.City(p.City).Name, cat.City(pop).Name, len(opts))

		// Measure each route hourly across one day.
		gain := 0.0
		const samples = 24
		for hour := 0; hour < samples; hour++ {
			t := float64(hour) * 60
			best, preferred := -1.0, -1.0
			for i, opt := range opts {
				phys, err := s.Res.ResolvePinned(opt.Route, pop, p.City, pop)
				if err != nil {
					continue
				}
				rtt := sim.MinRTTMs(phys, p, t, 15)
				if i == 0 {
					preferred = rtt
				}
				if best < 0 || rtt < best {
					best = rtt
				}
			}
			if preferred >= 0 && best >= 0 {
				gain += preferred - best
			}
		}
		for i, opt := range opts {
			marker := " "
			if i == 0 {
				marker = "*" // BGP's pick
			}
			fmt.Printf("  %s [%d] %-12s via %-16s AS-path len %d\n",
				marker, i, opt.Class, s.Topo.ASes[opt.Neighbor].Name, opt.Route.PathLen())
		}
		fmt.Printf("  omniscient controller would have saved %.2f ms on average\n",
			gain/samples)
	}
	if shown == 0 {
		log.Fatal("no prefix with 3+ egress routes; try another seed")
	}
}
