// Quickstart: build a scenario, reproduce the paper's headline result
// (Figure 1 — BGP's preferred egress route vs the best alternate), and
// print the summary statistics.
package main

import (
	"fmt"
	"log"

	"beatbgp"
)

func main() {
	// Everything is deterministic in the seed: rerunning this program
	// reproduces the exact same numbers.
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d ASes, %d links, %d client prefixes, %d provider PoPs\n",
		s.Topo.NumASes(), len(s.Topo.Links), len(s.Topo.Prefixes), len(s.Prov.PoPs))

	res, err := beatbgp.Run(s, "fig1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	// The series are plain (x, y) points — feed them to any plotting tool.
	for _, series := range res.Series {
		if series.Name == "median-diff" {
			fmt.Printf("\nCDF of the median difference at 0 ms: %.3f (fraction of traffic where BGP is at least as fast)\n",
				series.YAt(0))
		}
	}
}
