// Anycast CDN: the paper's §3.2 setting. Compute anycast catchments for a
// sample of clients, compare anycast latency against the best nearby
// unicast front-end, then train an LDNS-granularity DNS redirector and
// see where it helps — and where it does worse than plain anycast.
package main

import (
	"fmt"
	"log"
	"math"

	"beatbgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/netsim"
)

func main() {
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	sim := netsim.New(s.Topo, s.Cfg.Net)
	cat := s.Topo.Catalog
	const when = 10 * 60 // 10:00 simulated

	fmt.Printf("CDN has %d front-end sites\n\n", len(s.CDN.Sites))
	fmt.Printf("%-16s %-16s %10s %10s %8s\n", "client", "caught by", "any_ms", "bestuni", "diff")
	var worst struct {
		p    beatbgp.Prefix
		diff float64
	}
	worst.diff = -1
	for i, p := range s.Topo.Prefixes {
		if i%29 != 0 {
			continue
		}
		any, site, err := s.CDN.AnycastRTT(sim, p, nil, when)
		if err != nil {
			continue
		}
		best := math.Inf(1)
		for _, sx := range s.CDN.NearestSites(p, 6) {
			if rtt, err := s.CDN.UnicastRTT(sim, p, sx, when); err == nil && rtt < best {
				best = rtt
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		fmt.Printf("%-16s %-16s %10.1f %10.1f %8.1f\n",
			cat.City(p.City).Name, cat.City(s.CDN.Sites[site].City).Name, any, best, any-best)
		if any-best > worst.diff {
			worst.p, worst.diff = p, any-best
		}
	}

	// Train the redirector on day 0-1 measurements, serve on day 2.
	rd, err := cdn.TrainRedirector(s.CDN, sim, s.DNS, s.Topo.Prefixes,
		[]float64{3 * 60, 15 * 60, 27 * 60, 39 * 60}, beatbgp.TrainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	evalT := 2*24*60 + 10*60
	improved, worse, n := 0, 0, 0
	for _, p := range s.Topo.Prefixes {
		any, _, err1 := s.CDN.AnycastRTT(sim, p, nil, float64(evalT))
		served, err2 := s.CDN.ServeRTT(sim, rd, s.DNS, p, float64(evalT))
		if err1 != nil || err2 != nil {
			continue
		}
		n++
		switch {
		case any-served > 1:
			improved++
		case served-any > 1:
			worse++
		}
	}
	fmt.Printf("\nDNS redirection vs anycast across %d clients: %d improved, %d worse, %d unchanged\n",
		n, improved, worse, n-improved-worse)
	if worst.diff > 0 {
		fmt.Printf("worst anycast miss: clients in %s, %.1f ms slower than their best front-end\n",
			cat.City(worst.p.City).Name, worst.diff)
	}
}
