// Measurement pipeline: the data side of DNS redirection. Run an
// Odin-style campaign (instrumented page views measuring anycast plus
// nearby unicast front-ends), inspect the per-LDNS aggregates, derive
// serving decisions from them, and see how the sampling budget changes
// what the redirector believes.
package main

import (
	"fmt"
	"log"

	"beatbgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/netsim"
	"beatbgp/internal/odin"
)

func main() {
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	sim := netsim.New(s.Topo, s.Cfg.Net)
	rounds := []float64{3 * 60, 10 * 60, 15 * 60, 21 * 60}

	for _, rate := range []float64{0.002, 0.02} {
		pipeline := odin.New(s.CDN, s.DNS, sim, odin.Config{Seed: 23, SampleRate: rate})
		agg, err := pipeline.Collect(s.Topo.Prefixes, rounds)
		if err != nil {
			log.Fatal(err)
		}
		decisions := odin.Decide(agg, 3, 0)
		overrides := 0
		for _, choice := range decisions {
			if choice != cdn.AnycastChoice {
				overrides++
			}
		}
		fmt.Printf("sample rate %.3f: %6d reports, %3d resolvers measured, %3d overriding anycast\n",
			rate, agg.Samples(), len(decisions), overrides)

		// Peek at one well-measured resolver's view of the world.
		bestResolver, bestN := -1, 0
		for r := range decisions {
			if _, n, ok := agg.Estimate(r, cdn.AnycastChoice); ok && n > bestN {
				bestResolver, bestN = r, n
			}
		}
		if bestResolver >= 0 {
			fmt.Printf("  resolver %d estimates (n=%d):\n", bestResolver, bestN)
			for _, ep := range agg.Endpoints(bestResolver) {
				med, n, _ := agg.Estimate(bestResolver, ep)
				name := "anycast"
				if ep != cdn.AnycastChoice {
					name = s.Topo.Catalog.City(s.CDN.Sites[ep].City).Name
				}
				fmt.Printf("    %-14s %6.1f ms (n=%d)\n", name, med, n)
			}
		}
	}
	fmt.Println("\nmore budget, more confident overrides — and fewer mispredictions (see -exp xodin)")
}
