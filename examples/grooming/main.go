// Grooming: the paper's §3.2.2 open question, hands-on. Find the anycast
// site that attracts the most badly-served traffic, prepend at it, and
// watch the catchment tail move — "nurture" improving what the
// footprint's "nature" left behind.
package main

import (
	"fmt"
	"log"
	"math"

	"beatbgp"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

// tailStats measures the anycast-vs-best-unicast gap distribution under a
// grooming configuration.
func tailStats(s *beatbgp.Scenario, sim *netsim.Sim, g *beatbgp.Grooming) (p95, worst float64, worstPrefix beatbgp.Prefix, err error) {
	rib, err := s.CDN.AnycastRIB(g)
	if err != nil {
		return 0, 0, beatbgp.Prefix{}, err
	}
	const when = 9 * 60
	var diffs []float64
	worst = -1
	for _, p := range s.Topo.Prefixes {
		any, _, err := s.CDN.RTTViaRIB(sim, rib, p, when)
		if err != nil {
			continue
		}
		best := math.Inf(1)
		for _, sx := range s.CDN.NearestSites(p, 6) {
			if rtt, err := s.CDN.UnicastRTT(sim, p, sx, when); err == nil && rtt < best {
				best = rtt
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		d := any - best
		diffs = append(diffs, d)
		if d > worst {
			worst, worstPrefix = d, p
		}
	}
	if len(diffs) == 0 {
		return 0, 0, beatbgp.Prefix{}, fmt.Errorf("no measurements")
	}
	// p95 by partial sort.
	for i := 0; i < len(diffs); i++ {
		for j := i + 1; j < len(diffs); j++ {
			if diffs[j] < diffs[i] {
				diffs[i], diffs[j] = diffs[j], diffs[i]
			}
		}
	}
	return diffs[len(diffs)*95/100], worst, worstPrefix, nil
}

func main() {
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	sim := netsim.New(s.Topo, s.Cfg.Net)
	cat := s.Topo.Catalog

	p95, worst, worstPrefix, err := tailStats(s, sim, nil)
	if err != nil {
		log.Fatal(err)
	}
	badSite, err := s.CDN.Catchment(worstPrefix, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ungroomed: p95 gap %.1f ms, worst %.1f ms (clients in %s caught by %s)\n",
		p95, worst, cat.City(worstPrefix.City).Name, cat.City(s.CDN.Sites[badSite].City).Name)

	// Groom, technique 1: prepend at the offending site so BGP sheds its
	// remote catchment — what a CDN operator would try first.
	for _, prepend := range []int{1, 2, 3} {
		g := &beatbgp.Grooming{Prepend: map[int]int{badSite: prepend}}
		p95g, worstg, _, err := tailStats(s, sim, g)
		if err != nil {
			log.Fatal(err)
		}
		newSite, err := s.CDN.Catchment(worstPrefix, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepend %d at %s: p95 %.1f ms, worst %.1f ms, those clients now caught by %s\n",
			prepend, cat.City(s.CDN.Sites[badSite].City).Name, p95g, worstg,
			cat.City(s.CDN.Sites[newSite].City).Name)
	}

	// Technique 2: selective announcement — withdraw the offending site's
	// prefix from its transit providers entirely, so only locally peered
	// networks are caught there.
	suppress := map[int]bool{}
	for _, nb := range s.Topo.Neighbors(s.CDN.Sites[badSite].AS.ID) {
		if nb.View == topology.ViewProvider {
			suppress[nb.Link] = true
		}
	}
	g := &beatbgp.Grooming{Suppress: map[int]map[int]bool{badSite: suppress}}
	p95g, worstg, _, err := tailStats(s, sim, g)
	if err != nil {
		log.Fatal(err)
	}
	newSite, err := s.CDN.Catchment(worstPrefix, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no-transit announce at %s: p95 %.1f ms, worst %.1f ms, those clients now caught by %s\n",
		cat.City(s.CDN.Sites[badSite].City).Name, p95g, worstg,
		cat.City(s.CDN.Sites[newSite].City).Name)
	fmt.Println("\ngrooming one site moves catchments but rarely fixes the tail alone —")
	fmt.Println("see the xgroom experiment for the greedy multi-site search")
}
