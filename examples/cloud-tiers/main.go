// Cloud tiers: the paper's §3.3 setting. Stand up Premium (ingress near
// the client, private WAN the rest of the way) and Standard (public
// Internet to the data center) announcements, then compare ping latency
// from vantage points in a few illustrative countries — including India,
// where the public Internet's westward Tier-1 carriage beats the WAN's
// eastward trans-Pacific haul.
package main

import (
	"fmt"
	"log"

	"beatbgp"
	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/measure"
	"beatbgp/internal/netpath"
)

func main() {
	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	premRIB, err := bgp.Compute(s.Topo, []bgp.Announcement{s.Prov.PremiumAnnouncement()})
	if err != nil {
		log.Fatal(err)
	}
	stdRIB, err := bgp.Compute(s.Topo, []bgp.Announcement{s.Prov.StandardAnnouncement()})
	if err != nil {
		log.Fatal(err)
	}
	platform := measure.New(s.Topo, s.Sim, measure.Config{Seed: 17})
	mk := func(name string, rib *bgp.RIB) measure.Target {
		return measure.Target{
			Name: name,
			Route: func(vp measure.VantagePoint) (netpath.Route, error) {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return netpath.Route{}, fmt.Errorf("unreachable")
				}
				public, _, _, err := s.Prov.EntryAndWAN(s.Res, r, vp.City)
				return public, err
			},
			ExtraRTTMs: func(vp measure.VantagePoint) float64 {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return 0
				}
				if _, _, wanKm, err := s.Prov.EntryAndWAN(s.Res, r, vp.City); err == nil {
					return wanKm * geo.FiberRTTMsPerKm
				}
				return 0
			},
		}
	}
	prem, std := mk("premium", premRIB), mk("standard", stdRIB)

	want := map[string]int{"US": 2, "DE": 2, "JP": 2, "AU": 2, "IN": 3, "BR": 2}
	fmt.Printf("%-8s %-16s %10s %10s %10s\n", "country", "city", "prem_ms", "std_ms", "std-prem")
	for _, vp := range platform.VantagePoints() {
		country := s.Topo.Catalog.City(vp.City).Country
		if want[country] <= 0 {
			continue
		}
		// Apply the paper's filter: direct Premium adjacency, >=1
		// intermediate AS on the Standard path.
		pr, sr := premRIB.Best(vp.AS), stdRIB.Best(vp.AS)
		if !pr.Valid || !sr.Valid || pr.PathLen() != 2 || sr.PathLen() < 3 {
			continue
		}
		p1, err1 := platform.Ping(vp, prem, 14*60)
		p2, err2 := platform.Ping(vp, std, 14*60)
		if err1 != nil || err2 != nil {
			continue
		}
		want[country]--
		fmt.Printf("%-8s %-16s %10.1f %10.1f %+10.1f\n",
			country, s.Topo.Catalog.City(vp.City).Name, p1, p2, p2-p1)
	}
	fmt.Println("\npositive = the private WAN (Premium) is faster; India should be negative")
}
