// Package beatbgp reproduces "Beating BGP is Harder than we Thought"
// (Arnold et al., HotNets 2019) as a runnable system: a deterministic
// Internet simulator — physical cable map, AS-level topology with business
// relationships, valley-free BGP, geographic path resolution, congestion —
// plus the content-provider, anycast-CDN, and cloud-tier infrastructure
// the paper's three studies measured, and the experiments that regenerate
// every figure and in-text statistic on that substrate.
//
// # Quick start
//
//	s, err := beatbgp.NewScenario(beatbgp.Config{Seed: 42})
//	if err != nil { ... }
//	res, err := beatbgp.Run(s, "fig1")
//	if err != nil { ... }
//	fmt.Print(res.Render())
//
// A Scenario is a fully built world: topology, provider with private WAN
// and peering fabric, anycast CDN sites, LDNS population, and the
// congestion simulator. Experiments share the scenario, so traces and
// routing state computed by one are reused by the next. Everything is
// deterministic in Config.Seed.
//
// The experiment registry (Experiments) covers the paper's Figures 1-5,
// the in-text statistics around them, and the open questions of §3.1.3,
// §3.2.2, §3.3.2 and §4 (peering reduction, anycast grooming, single-WAN
// carriage, split TCP, availability). See DESIGN.md for the full index
// and EXPERIMENTS.md for paper-vs-measured values.
package beatbgp

import (
	"context"
	"time"

	"beatbgp/internal/cdn"
	"beatbgp/internal/core"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/faults"
	"beatbgp/internal/harness"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
	"beatbgp/internal/workload"
)

// Core orchestration types.
type (
	// Config assembles a scenario; the zero value plus a Seed is a
	// sensible laptop-scale default.
	Config = core.Config
	// Scenario is a fully built simulation world.
	Scenario = core.Scenario
	// World is a frozen, concurrently-queryable Scenario view — the
	// serving layer's handle (see Scenario.Freeze and internal/serve).
	World = core.World
	// Result is one experiment's output: named series (figure lines) and
	// tables (reported statistics).
	Result = core.Result
	// Experiment is one runnable paper artifact.
	Experiment = core.Experiment
	// BuildReport instruments a scenario build: per-stage wall time and
	// rebuilt-vs-reused counts (see Scenario.BuildReport and Derive).
	BuildReport = core.BuildReport
	// StageReport is one stage of a BuildReport.
	StageReport = core.StageReport
)

// Domain configuration and result types, for callers composing their own
// studies on the substrate.
type (
	TopologyConfig = topology.GenConfig
	ProviderConfig = provider.Config
	CDNConfig      = cdn.Config
	DNSConfig      = dnsmap.Config
	NetConfig      = netsim.Config
	WorkloadConfig = workload.Config

	// EgressOption is one route a provider PoP could use toward a prefix.
	EgressOption = provider.EgressOption
	// RouteClass ranks egress options under provider BGP policy.
	RouteClass = provider.RouteClass
	// Grooming holds manual anycast route-optimization knobs.
	Grooming = cdn.Grooming
	// TrainOpts tunes DNS-redirector training.
	TrainOpts = cdn.TrainOpts
	// Prefix is a client address block with geography and weight.
	Prefix = topology.Prefix

	// Series is a plottable line; Table a labelled grid.
	Series = stats.Series
	Table  = stats.Table
)

// Fault-injection types: a scheduled, seed-deterministic timeline of
// infrastructure events (cable cuts, AS/facility outages, session resets,
// congestion storms, LDNS staleness) that composes with the stochastic
// incidents via Sim.SetFaults. See the internal/faults package doc for
// the fault model.
type (
	// FaultKind classifies a fault event.
	FaultKind = faults.Kind
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// FaultTimeline is a validated, queryable fault schedule; it plugs
	// into a netsim.Sim as its fault overlay.
	FaultTimeline = faults.Timeline
	// FaultGenConfig parameterizes seed-deterministic fault generation.
	FaultGenConfig = faults.GenConfig
)

// Fault kinds.
const (
	FaultCableCut        = faults.CableCut
	FaultLinkDown        = faults.LinkDown
	FaultASOutage        = faults.ASOutage
	FaultFacilityOutage  = faults.FacilityOutage
	FaultCongestionStorm = faults.CongestionStorm
	FaultLDNSStale       = faults.LDNSStale
)

// NewFaultTimeline validates an explicit fault schedule against the
// scenario's topology.
func NewFaultTimeline(s *Scenario, events []FaultEvent) (*FaultTimeline, error) {
	return faults.New(s.Topo, events)
}

// GenerateFaults draws a seed-deterministic fault schedule over the
// scenario's topology.
func GenerateFaults(s *Scenario, cfg FaultGenConfig) (*FaultTimeline, error) {
	return faults.Generate(s.Topo, cfg)
}

// Supervisor types: the crash-safe campaign runner (internal/harness)
// that cmd/beatbgp and long-running embedders drive. A campaign is a
// grid of (experiment, seed) cells run with panic isolation, typed
// failure taxonomy, deterministic retry backoff, watchdog warnings,
// checkpoint/resume keyed by build-graph content, and graceful drain.
type (
	// Campaign is the work grid: experiments × seeds over a base config.
	Campaign = harness.Campaign
	// SupervisorConfig tunes retries, deadlines, checkpointing and drain.
	SupervisorConfig = harness.Config
	// SupervisorEvent is one operator notification from a running campaign.
	SupervisorEvent = harness.Event
	// CampaignReport is a finished campaign's per-cell accounting.
	CampaignReport = harness.Report
	// Manifest is the machine-readable run summary persisted to the run dir.
	Manifest = harness.Manifest
	// Outcome records how one cell ended.
	Outcome = harness.Outcome
	// CellRef names one (experiment, seed) cell and its content key.
	CellRef = harness.CellRef
	// CellStatus is a cell's final disposition (ok, resumed, failed, ...).
	CellStatus = harness.Status
	// FailureKind files a failed cell under the supervisor's taxonomy.
	FailureKind = harness.Kind
)

// Supervisor event kinds.
const (
	EventWorld         = harness.EventWorld
	EventSlow          = harness.EventSlow
	EventRetry         = harness.EventRetry
	EventCheckpoint    = harness.EventCheckpoint
	EventResumed       = harness.EventResumed
	EventBadCheckpoint = harness.EventBadCheckpoint
)

// ManifestName is the manifest's filename inside a run directory.
const ManifestName = harness.ManifestName

// Supervisor error taxonomy: failed cells match these under errors.Is,
// and ErrPartial marks a campaign that ended with incomplete cells (the
// exit-code-2 condition in cmd/beatbgp).
var (
	ErrPanic       = harness.ErrPanic
	ErrTimeout     = harness.ErrTimeout
	ErrCancelled   = harness.ErrCancelled
	ErrBuildFailed = harness.ErrBuildFailed
	ErrPartial     = harness.ErrPartial
)

// RunCampaign executes a supervised campaign: every (experiment, seed)
// cell isolated, retried, checkpointed and drained per cfg. A resumed
// campaign's CampaignReport.FinalResults render byte-identically to an
// uninterrupted one's.
func RunCampaign(ctx context.Context, camp Campaign, cfg SupervisorConfig) (*CampaignReport, error) {
	return harness.Run(ctx, camp, cfg)
}

// WorldKey is the content key of the world cfg builds: the chained hash
// over every build-graph stage input. Two configs with equal keys build
// byte-identical worlds (worker count and other non-semantic knobs are
// excluded). It is the key checkpoints are filed under.
func WorldKey(cfg Config) (string, error) { return core.WorldKey(cfg) }

// Egress route classes, in decreasing BGP-policy preference.
const (
	ClassPNI        = provider.ClassPNI
	ClassPublicPeer = provider.ClassPublicPeer
	ClassTransit    = provider.ClassTransit
)

// NewScenario builds the simulation world for the config: every stage of
// the build graph (topology → provider/cdn/dns → oracle/resolver/sim/gen)
// runs fresh. To build a variation of an existing world, prefer
// Scenario.Derive:
//
//	sub, err := s.Derive(func(c *beatbgp.Config) { c.Net.DisableSharedFate = true })
//
// Derive rebuilds only the stages whose config changed and shares the
// unchanged immutable artifacts with the receiver by pointer, so sweeping
// a single knob costs a fraction of a full build. Derived scenarios are
// byte-for-byte equivalent to fresh ones: every experiment's Render()
// output is identical, at any worker count. Scenario.BuildReport shows
// what was rebuilt and what each stage cost.
func NewScenario(cfg Config) (*Scenario, error) { return core.NewScenario(cfg) }

// Experiments returns the full registry in the paper's order.
func Experiments() []Experiment { return core.Experiments() }

// Engines lists the valid Config.Engine names.
func Engines() []string { return core.Engines() }

// Run executes one experiment by registry ID (e.g. "fig1", "t311",
// "xgroom") against the scenario.
func Run(s *Scenario, id string) (Result, error) { return core.RunByID(s, id) }

// RunSeeds runs one experiment across several seeds — each world derived
// from the previous via Scenario.Derive, reseeding every stage the caller
// left on defaults — and aggregates every reported table cell into
// mean/min/max, the robustness check for any headline number.
func RunSeeds(base Config, id string, seeds []uint64) (Result, error) {
	return core.RunSeeds(base, id, seeds)
}

// RunAll executes every registered experiment in order, stopping at the
// first error.
func RunAll(s *Scenario) ([]Result, error) {
	var out []Result
	for _, e := range Experiments() {
		r, err := e.Run(context.Background(), s)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunContext is Run honoring context cancellation and, when timeout > 0, a
// per-experiment deadline. A panic inside the experiment is recovered and
// returned as an error. After a cancellation or timeout the scenario must
// be discarded: the abandoned experiment goroutine may still be mutating
// its caches.
func RunContext(ctx context.Context, s *Scenario, id string, timeout time.Duration) (Result, error) {
	return core.RunByIDContext(ctx, s, id, timeout)
}

// RunAllContext is RunAll under a context with an optional per-experiment
// timeout, stopping at the first error. The same discard-on-timeout rule
// as RunContext applies.
func RunAllContext(ctx context.Context, s *Scenario, timeout time.Duration) ([]Result, error) {
	return core.RunAllContext(ctx, s, timeout)
}

// RunAllParallel runs the whole registry concurrently on the shared
// scenario, bounded by Config.Workers (GOMAXPROCS when zero), and returns
// results in registry order. Experiments are read-only consumers of the
// built world, so the Results — including every Render() byte — match the
// sequential runner's at any worker count. Results are cut at the first
// registry-order failure; siblings are not cancelled by it.
func RunAllParallel(ctx context.Context, s *Scenario, timeout time.Duration) ([]Result, error) {
	return core.RunAllParallelContext(ctx, s, timeout)
}

// RunManyParallel is RunAllParallel restricted to the named experiments,
// with results in the order the IDs were given.
func RunManyParallel(ctx context.Context, s *Scenario, ids []string, timeout time.Duration) ([]Result, error) {
	return core.RunManyParallelContext(ctx, s, ids, timeout)
}
