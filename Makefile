GO ?= go

.PHONY: all build vet test race fuzz bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over Config validation; raise FUZZTIME for a longer run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) ./internal/core/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
