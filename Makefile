GO ?= go

.PHONY: all build vet fmt-check test race race-par fuzz fuzz-par stress-par stress-harness verify bench bench-json clean

all: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail (and list the offenders) if any tracked Go file drifts from gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt drift in:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race: race-par
	$(GO) test -race ./...

# Race-focused pass over the parallel runtime and everything it fans out
# into: the pool itself, the goroutine-confined caches it hammers, the
# parallel fig1 path end to end (efTraces under the determinism sweep),
# and two derived scenarios sharing a world's immutable artifacts.
race-par:
	$(GO) vet ./internal/par/ ./internal/core/
	$(GO) test -race ./internal/par/ ./internal/cable/ ./internal/netsim/ ./internal/bgp/ ./internal/workload/
	$(GO) test -race -run 'TestConcurrentDerivedScenarios|TestDeriveArtifactReuse' ./internal/core/
	$(GO) test -race -run 'TestRenderDeterministicAcrossWorkers|TestParallelRunnerMatchesSequential' .

# Short fuzz pass over Config validation; raise FUZZTIME for a longer run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) ./internal/core/

# Fuzz the parallel map against the serial oracle (randomized inputs,
# worker counts, and error sites must reproduce serial results exactly).
fuzz-par:
	$(GO) test -run=^$$ -fuzz=FuzzMapVsSerial -fuzztime=$(FUZZTIME) ./internal/par/

# Deterministic stress: repeated randomized worker-count sweeps checked
# against the serial oracle, with the race detector watching.
STRESSCOUNT ?= 5
stress-par:
	$(GO) test -race -run 'TestStressRandomWorkersVsSerialOracle' -count=$(STRESSCOUNT) ./internal/par/

# Crash-safety stress: SIGKILL a live campaign the moment its first
# checkpoint lands, resume it, and assert the resumed stdout is
# byte-identical to an uninterrupted run (zero re-runs per the manifest).
stress-harness:
	STRESS_HARNESS=1 $(GO) test -run 'TestStressKillResume' -v -timeout 10m ./cmd/beatbgp/

# The full pre-merge gate: formatting, static checks, build, the whole
# test suite, and the race-focused parallel pass, in fail-fast order.
verify: fmt-check vet build test race-par

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable benchmark baseline: BENCH_$(N).json records ns/op and
# allocs for the root experiment suite plus the parallel-runtime probes.
# Bump N for each new baseline (BENCH_1.json is the first, committed one).
N ?= 1
BENCHTIME ?= 1x
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ . ; \
	  $(GO) test -bench='EFTraceReplay|Fig3AnycastSweep|SiteDensitySweep' -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/core/ ; } \
	  | /tmp/benchjson -o BENCH_$(N).json

clean:
	$(GO) clean ./...
