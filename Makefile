GO ?= go

.PHONY: all build vet fmt-check test race race-par race-session race-matbgp race-delta race-serve fuzz fuzz-par fuzz-session fuzz-matbgp fuzz-delta stress-par stress-session stress-harness stress-serve verify bench bench-json clean

all: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail (and list the offenders) if any tracked Go file drifts from gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt drift in:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race: race-par race-session
	$(GO) test -race ./...

# Race-focused pass over the parallel runtime and everything it fans out
# into: the pool itself, the goroutine-confined caches it hammers, the
# parallel fig1 path end to end (efTraces under the determinism sweep),
# and two derived scenarios sharing a world's immutable artifacts.
race-par:
	$(GO) vet ./internal/par/ ./internal/core/
	$(GO) test -race ./internal/par/ ./internal/cable/ ./internal/netsim/ ./internal/bgp/ ./internal/workload/
	$(GO) test -race -run 'TestConcurrentDerivedScenarios|TestDeriveArtifactReuse' ./internal/core/
	$(GO) test -race -run 'TestRenderDeterministicAcrossWorkers|TestParallelRunnerMatchesSequential' .

# Race-focused pass over the event-driven session layer and the core
# experiments that replay it inside parallel sweeps (xdetect fans one
# session replay per timer setting across par workers).
race-session:
	$(GO) test -race ./internal/session/
	$(GO) test -race -run 'TestDetectionStudyShape|TestFlapStormShape|TestSessionDifferentialMatchesClosedForm|TestSessionStudyDeterminism' ./internal/core/

# Race-focused pass over the batch route engine: the class-column cache is
# shared across oracle workers (PrimeOrigins fans ToOrigin misses over the
# pool), so the differential suite runs under the detector, plus the
# oracle's annotation paths and the cross-engine determinism gate.
race-matbgp:
	$(GO) test -race ./internal/matbgp/
	$(GO) test -race -run 'TestPrimeOrigins' ./internal/bgp/
	$(GO) test -race -run 'TestRenderDeterministicAcrossWorkers' .

# Race-focused pass over the incremental-repair stack: the delta
# vocabulary, the matbgp repair differential suite (repaired columns vs
# full rebuild), the cdn epoch layer (repair chains + epoch caches
# shared behind one mutex), and the core epoch acceptance gate (xfaults/
# xflap sequences bit-identical to rebuilds at workers 1/2/8).
race-delta:
	$(GO) test -race ./internal/delta/
	$(GO) test -race -run 'TestRepair|TestRibRepairer|TestStartRepair' ./internal/matbgp/
	$(GO) test -race -run 'TestEpoch' ./internal/cdn/
	$(GO) test -race -run 'TestEpochRepairBitIdenticalAcrossWorkers|TestRepairWalkerMatchesRebuild|TestFaultEpochsMemoized' ./internal/core/

# Race-focused pass over the serving layer and the concurrency seams it
# leans on: parallel mixed queries against a live beatbgpd listener must
# stay byte-identical to single-threaded library answers, restart on the
# same world key must be transparent, drain must complete in-flight
# requests — all under the detector, plus the cdn/matbgp singleflight
# paths the daemon's queries fan into.
race-serve:
	$(GO) test -race -run 'TestServe' ./internal/serve/
	$(GO) test -race -run 'TestEpochConcurrentQueries' ./internal/cdn/
	$(GO) test -race -run 'TestEngineClassColumnSingleflight|TestRepairInterleavedChains' ./internal/matbgp/

# Short fuzz pass over Config validation; raise FUZZTIME for a longer run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) ./internal/core/

# Fuzz the parallel map against the serial oracle (randomized inputs,
# worker counts, and error sites must reproduce serial results exactly).
fuzz-par:
	$(GO) test -run=^$$ -fuzz=FuzzMapVsSerial -fuzztime=$(FUZZTIME) ./internal/par/

# Fuzz the BGP/BFD session FSMs: random event sequences must never reach
# an invalid state, never panic, and never enter Established without the
# full handshake.
fuzz-session:
	$(GO) test -run=^$$ -fuzz=FuzzFSMTransitions -fuzztime=$(FUZZTIME) ./internal/session/

# Differential fuzz of the batch route engine against the recursive
# reference: fuzzer-chosen announcement sets and failed links over small
# worlds must produce bit-identical routes, offers, and error text.
fuzz-matbgp:
	$(GO) test -run=^$$ -fuzz=FuzzMatbgpVsOracle -fuzztime=$(FUZZTIME) ./internal/matbgp/

# Differential fuzz of incremental route repair: random delta sequences
# (link downs/ups, inverted walks) applied to a repair chain must leave
# every column bit-identical to a fresh all-pairs rebuild at the same
# down set.
fuzz-delta:
	$(GO) test -run=^$$ -fuzz=FuzzDeltaRepair -fuzztime=$(FUZZTIME) ./internal/matbgp/

# Deterministic stress: repeated randomized worker-count sweeps checked
# against the serial oracle, with the race detector watching.
STRESSCOUNT ?= 5
stress-par:
	$(GO) test -race -run 'TestStressRandomWorkersVsSerialOracle' -count=$(STRESSCOUNT) ./internal/par/

# Session determinism stress: the flap-storm and detection experiments
# rendered at workers 1 vs 8 (and with BFD on) must be byte-identical,
# with the race detector watching the parallel replay.
stress-session:
	STRESS_SESSION=1 $(GO) test -race -run 'TestStressSessionAcrossWorkers' -v -timeout 10m .

# Crash-safety stress: SIGKILL a live campaign the moment its first
# checkpoint lands, resume it, and assert the resumed stdout is
# byte-identical to an uninterrupted run (zero re-runs per the manifest).
stress-harness:
	STRESS_HARNESS=1 $(GO) test -run 'TestStressKillResume' -v -timeout 10m ./cmd/beatbgp/

# Overload soak: a flash-crowd loadgen fleet (1M synthetic clients, 5x
# burst) drives a live listener far past its admission capacity while
# chaos stalls and errors hit the repair chains, with the race detector
# watching. Passing means every refusal was typed (429/503/504, no
# transport errors), the admitted-query p99 stayed bounded by the
# serving deadline, fallback answers were marked degraded, and the
# daemon returned to its pre-soak goroutine count.
stress-serve:
	STRESS_SERVE=1 $(GO) test -race -run 'TestStressServeOverload' -v -timeout 10m ./internal/serve/

# The full pre-merge gate: formatting, static checks, build, the whole
# test suite, the race-focused passes, the delta-repair differential
# fuzz, and the race-enabled overload soak, in fail-fast order.
verify: fmt-check vet build test race-par race-session race-matbgp race-delta race-serve fuzz-delta stress-serve

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable benchmark baseline: BENCH_$(N).json records ns/op and
# allocs for the root experiment suite, the parallel-runtime probes, the
# session-layer replay benchmarks, and the batch route engine at
# internet scale (100k-AS all-pairs + compression + delta repair). Bump
# N for each new baseline (BENCH_1.json is the first committed one;
# BENCH_3.json adds the session benchmarks; BENCH_4.json adds the matbgp
# engine; BENCH_5.json adds the incremental delta-repair benchmarks and
# the engine/workers/commit metadata header; BENCH_6.json adds the
# serving layer's sustained-throughput probes, whose queries/s custom
# metric lands in each record's "extra" map; BENCH_7.json adds the
# overload benchmark, whose sessions/s, admitted-tail p50_ms/p99_ms/
# p999_ms, and shed_pct metrics land in the extra map). The serve
# benchmarks get their own benchtime: one op is one HTTP round trip,
# so a few hundred ops are needed for a sustained queries/s figure.
# The overload probe's op is one offered session — far cheaper — so it
# needs tens of thousands of ops to hold the gate saturated long
# enough for a stable shed rate.
N ?= 7
BENCHTIME ?= 1x
SERVEBENCHTIME ?= 500x
OVERLOADBENCHTIME ?= 20000x
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	{ $(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ . ; \
	  $(GO) test -bench='EFTraceReplay|Fig3AnycastSweep|SiteDensitySweep' -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/core/ ; \
	  $(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/session/ ; \
	  $(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ ./internal/matbgp/ ; \
	  $(GO) test -bench='ServeLatencyQuery|ServeWhatIf' -benchmem -benchtime=$(SERVEBENCHTIME) -run=^$$ ./internal/serve/ ; \
	  $(GO) test -bench='ServeOverload' -benchmem -benchtime=$(OVERLOADBENCHTIME) -run=^$$ ./internal/serve/ ; } \
	  | /tmp/benchjson -o BENCH_$(N).json

clean:
	$(GO) clean ./...
